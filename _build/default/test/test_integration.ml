(* End-to-end simulations over the full network stack: the system-level
   guarantees Themis must provide. *)

let motivation_params scheme =
  Network.default_params ~fabric:Leaf_spine.motivation ~scheme

let run_one_flow ?(bytes = 500_000) ?(horizon = Sim_time.sec 5) params =
  let net = Network.build params in
  let dst = Leaf_spine.host (Network.fabric net) ~leaf:1 ~index:0 in
  let qp = Network.connect net ~src:0 ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes ~on_complete:(fun t -> done_at := Some t);
  Network.run net ~until:horizon;
  (net, !done_at)

let test_single_flow_all_schemes () =
  List.iter
    (fun scheme ->
      let net, done_at = run_one_flow (motivation_params scheme) in
      (match done_at with
      | Some _ -> ()
      | None ->
          Alcotest.failf "flow did not complete under %s"
            (Network.scheme_to_string scheme));
      Alcotest.(check int)
        (Network.scheme_to_string scheme ^ " no drops")
        0 (Network.total_buffer_drops net))
    [
      Network.Ecmp;
      Network.Adaptive;
      Network.Random_spray;
      Network.Psn_spray_only;
      Network.Themis { compensation = true };
    ]

let test_themis_blocks_all_nacks_without_loss () =
  (* Invariant: with PSN spraying and no loss, every NACK is invalid and
     Themis delivers none of them to senders — zero spurious
     retransmissions and zero NACK slow-starts. *)
  let params = motivation_params (Network.Themis { compensation = true }) in
  let net = Network.build params in
  let ls = Network.fabric net in
  let done_count = ref 0 in
  (* Cross traffic to force reordering: all 8 hosts in two rings. *)
  let groups = Workload.motivation_groups ls in
  Array.iter
    (fun members ->
      let n = Array.length members in
      Array.iteri
        (fun i src ->
          let qp = Network.connect net ~src ~dst:members.((i + 1) mod n) in
          Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun _ ->
              incr done_count))
        members)
    groups;
  Network.run net ~until:(Sim_time.sec 5);
  Alcotest.(check int) "all flows complete" 8 !done_count;
  Alcotest.(check int) "no nacks reach senders" 0 (Network.total_nacks_delivered net);
  Alcotest.(check int) "no spurious retransmissions" 0
    (Network.total_retx_packets net);
  match Network.themis_totals net with
  | None -> Alcotest.fail "themis stats expected"
  | Some t ->
      Alcotest.(check int) "all seen NACKs blocked" t.Network.nacks_seen
        t.Network.nacks_blocked;
      Alcotest.(check int) "no real loss -> no compensation" 0
        t.Network.compensation_sent

let test_themis_recovers_real_loss () =
  (* Force drops in the fabric: the flow must still complete, via valid
     NACKs (same-path trigger) or compensation or timeout, and every
     dropped packet must be retransmitted. *)
  let params = motivation_params (Network.Themis { compensation = true }) in
  let net = Network.build params in
  let ls = Network.fabric net in
  let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
  let qp = Network.connect net ~src:0 ~dst in
  (* Drop 5 data packets on one ToR->spine uplink mid-message. *)
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let spine0 = ls.Leaf_spine.spines.(0) in
  let uplink = Option.get (Switch.port_to (Network.switch net ~node:tor0) ~peer:spine0) in
  Port.inject_drops uplink 5;
  let done_at = ref None in
  Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun t -> done_at := Some t);
  Network.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes despite loss" true (!done_at <> None);
  Alcotest.(check int) "dropped five" 5 (Port.dropped_packets uplink);
  Alcotest.(check bool) "retransmissions happened" true
    (Network.total_retx_packets net >= 5);
  Alcotest.(check int) "receiver got every byte" 1_000_000
    (Rnic.delivered_bytes (Network.nic net ~host:dst))

let test_compensation_carries_recovery () =
  (* Same as above but check the recovery is NACK-driven (valid forwards
     plus compensations cover the drops) rather than pure timeout. *)
  let params = motivation_params (Network.Themis { compensation = true }) in
  let net = Network.build params in
  let ls = Network.fabric net in
  let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
  let qp = Network.connect net ~src:0 ~dst in
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let spine0 = ls.Leaf_spine.spines.(0) in
  let uplink = Option.get (Switch.port_to (Network.switch net ~node:tor0) ~peer:spine0) in
  Port.inject_drops uplink 3;
  let done_at = ref None in
  Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun t -> done_at := Some t);
  Network.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes" true (!done_at <> None);
  match Network.themis_totals net with
  | None -> Alcotest.fail "themis stats expected"
  | Some t ->
      Alcotest.(check bool) "nack-driven recovery" true
        (t.Network.nacks_forwarded_valid + t.Network.compensation_sent >= 1)

(* Property: whatever loss the fabric injects (random counts at random
   uplinks), a Themis network delivers every byte exactly once and the
   transfer completes. *)
let prop_random_drops_safe =
  QCheck.Test.make ~name:"themis delivers exactly once under random loss"
    ~count:20
    QCheck.(
      pair (int_range 0 1000)
        (list_of_size (Gen.int_range 0 4)
           (make (Gen.pair (Gen.int_range 0 1) (Gen.pair (Gen.int_range 0 3) (Gen.int_range 1 4))))))
    (fun (seed, drop_specs) ->
      let params =
        {
          (motivation_params (Network.Themis { compensation = true })) with
          Network.seed;
        }
      in
      let net = Network.build params in
      let ls = Network.fabric net in
      let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
      let qp = Network.connect net ~src:0 ~dst in
      List.iter
        (fun (leaf, (spine, n)) ->
          let tor = ls.Leaf_spine.leaves.(leaf) in
          let sp = ls.Leaf_spine.spines.(spine) in
          match Switch.port_to (Network.switch net ~node:tor) ~peer:sp with
          | Some port -> Port.inject_drops port n
          | None -> ())
        drop_specs;
      let done_at = ref None in
      let bytes = 300_000 in
      Rnic.post_send qp ~bytes ~on_complete:(fun t -> done_at := Some t);
      Network.run net ~until:(Sim_time.sec 10);
      !done_at <> None
      && Rnic.delivered_bytes (Network.nic net ~host:dst) = bytes)

let test_determinism_same_seed () =
  let run () =
    let net, done_at = run_one_flow (motivation_params Network.Random_spray) in
    (Option.get done_at, Network.total_data_packets net,
     Network.total_nacks_generated net)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_seed_changes_outcome () =
  let run seed =
    let params = { (motivation_params Network.Random_spray) with Network.seed } in
    let net, done_at = run_one_flow params in
    ignore done_at;
    (* The per-spine packet counts fingerprint the spraying decisions. *)
    Array.to_list
      (Array.map
         (fun sp -> Switch.rx_packets (Network.switch net ~node:sp))
         (Network.fabric net).Leaf_spine.spines)
  in
  Alcotest.(check bool) "seeds matter" true (run 1 <> run 2)

let test_link_failure_fallback () =
  (* Section 6: on failure, Themis turns itself off and falls back to
     ECMP; traffic still completes. *)
  let params = motivation_params (Network.Themis { compensation = true }) in
  let net = Network.build params in
  let ls = Network.fabric net in
  Alcotest.(check bool) "themis on" true (Network.themis_active net);
  let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
  let qp = Network.connect net ~src:0 ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:2_000_000 ~on_complete:(fun t -> done_at := Some t);
  (* Fail a ToR-spine link shortly after the start. *)
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let spine0 = ls.Leaf_spine.spines.(0) in
  let link =
    Option.get (Topology.link_between ls.Leaf_spine.topo tor0 spine0)
  in
  ignore
    (Engine.schedule (Network.engine net) ~delay:(Sim_time.us 20) (fun () ->
         Network.fail_link net ~link_id:link));
  Network.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "themis disabled" false (Network.themis_active net);
  Alcotest.(check bool) "completes over remaining paths" true (!done_at <> None);
  Alcotest.(check bool) "tor reverted to ecmp" true
    ((Switch.config (Network.switch net ~node:tor0)).Switch.lb = Lb_policy.Ecmp);
  Alcotest.(check bool) "middleware detached" true
    (Switch.themis_d (Network.switch net ~node:tor0) = None)

let test_link_failure_shrink_pathset () =
  (* Section 6 future work: stay in spraying mode over the surviving
     spines instead of reverting to ECMP. *)
  let params = motivation_params (Network.Themis { compensation = true }) in
  let net = Network.build params in
  let ls = Network.fabric net in
  let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
  let qp = Network.connect net ~src:0 ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:2_000_000 ~on_complete:(fun t -> done_at := Some t);
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let spine0 = ls.Leaf_spine.spines.(0) in
  let link =
    Option.get (Topology.link_between ls.Leaf_spine.topo tor0 spine0)
  in
  ignore
    (Engine.schedule (Network.engine net) ~delay:(Sim_time.us 20) (fun () ->
         Network.fail_link ~mode:`Shrink_pathset net ~link_id:link));
  Network.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "themis still active" true (Network.themis_active net);
  Alcotest.(check bool) "completes" true (!done_at <> None);
  (match Switch.themis_s (Network.switch net ~node:tor0) with
  | Some s -> Alcotest.(check int) "sprays over 3 spines" 3 (Themis_s.paths s)
  | None -> Alcotest.fail "themis-s should remain attached");
  match Switch.themis_d (Network.switch net ~node:tor0) with
  | Some d -> Alcotest.(check int) "validates over 3 spines" 3 (Themis_d.paths d)
  | None -> Alcotest.fail "themis-d should remain attached"

let test_connect_registers_flow () =
  let params = motivation_params (Network.Themis { compensation = true }) in
  let net = Network.build params in
  let dst = Leaf_spine.host (Network.fabric net) ~leaf:1 ~index:0 in
  let qp = Network.connect net ~src:0 ~dst in
  let dst_tor = Leaf_spine.tor_of_host (Network.fabric net) dst in
  match Switch.themis_d (Network.switch net ~node:dst_tor) with
  | None -> Alcotest.fail "themis-d expected on dst ToR"
  | Some d ->
      Alcotest.(check bool) "flow table entry" true
        (Flow_table.find (Themis_d.flow_table d) (Rnic.qp_conn qp) <> None)

let test_paper_scale_builds_and_runs () =
  (* The full 16x16 evaluation fabric (256 NICs): build it, push one
     cross-rack message through Themis, and make sure the machinery
     scales. *)
  let params =
    Network.default_params ~fabric:Leaf_spine.paper_eval
      ~scheme:(Network.Themis { compensation = true })
  in
  let net = Network.build params in
  Alcotest.(check int) "16 paths" 16 (Network.n_paths net);
  Alcotest.(check int) "256 hosts" 256
    (Array.length (Network.fabric net).Leaf_spine.hosts);
  let dst = Leaf_spine.host (Network.fabric net) ~leaf:15 ~index:15 in
  let qp = Network.connect net ~src:0 ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun t -> done_at := Some t);
  Network.run net ~until:(Sim_time.sec 5);
  (match !done_at with
  | Some t ->
      (* 1 MB at 400 Gbps + 4 hops of 1 us: ~25 us. *)
      Alcotest.(check bool) "fast" true (t < Sim_time.us 100)
  | None -> Alcotest.fail "did not complete");
  Alcotest.(check int) "clean" 0 (Network.total_retx_packets net)

let test_scheme_strings () =
  List.iter
    (fun s ->
      match Network.scheme_of_string (Network.scheme_to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    [
      Network.Ecmp;
      Network.Adaptive;
      Network.Random_spray;
      Network.Psn_spray_only;
      Network.Themis { compensation = true };
      Network.Themis { compensation = false };
    ]

let test_spray_outperforms_ecmp_on_collisions () =
  (* The headline qualitative claim at flow level: with several elephants
     sharing uplinks, per-packet spraying with Themis finishes no later
     than ECMP (which can collide two flows onto one spine). *)
  let run scheme =
    let params =
      { (motivation_params scheme) with Network.seed = 3 }
    in
    let net = Network.build params in
    let ls = Network.fabric net in
    let finished = ref [] in
    (* Hosts 0 and 1 both send cross-rack. *)
    List.iter
      (fun (src, dst_idx) ->
        let dst = Leaf_spine.host ls ~leaf:1 ~index:dst_idx in
        let qp = Network.connect net ~src ~dst in
        Rnic.post_send qp ~bytes:2_000_000 ~on_complete:(fun t ->
            finished := t :: !finished))
      [ (0, 0); (1, 1); (2, 2); (3, 3) ];
    Network.run net ~until:(Sim_time.sec 5);
    Alcotest.(check int) "all done" 4 (List.length !finished);
    List.fold_left Stdlib.max 0 !finished
  in
  let themis = run (Network.Themis { compensation = true }) in
  let ecmp = run Network.Ecmp in
  Alcotest.(check bool) "themis <= ecmp tail" true (themis <= ecmp)

let () =
  Alcotest.run "integration"
    [
      ( "safety",
        [
          Alcotest.test_case "single flow all schemes" `Quick test_single_flow_all_schemes;
          Alcotest.test_case "no-loss: all NACKs blocked" `Quick
            test_themis_blocks_all_nacks_without_loss;
          Alcotest.test_case "real loss recovered" `Quick test_themis_recovers_real_loss;
          Alcotest.test_case "nack-driven recovery" `Quick test_compensation_carries_recovery;
          QCheck_alcotest.to_alcotest prop_random_drops_safe;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed" `Quick test_determinism_same_seed;
          Alcotest.test_case "different seed" `Quick test_seed_changes_outcome;
        ] );
      ( "operations",
        [
          Alcotest.test_case "link failure fallback" `Quick test_link_failure_fallback;
          Alcotest.test_case "link failure shrink pathset" `Quick
            test_link_failure_shrink_pathset;
          Alcotest.test_case "connect registers" `Quick test_connect_registers_flow;
          Alcotest.test_case "scheme strings" `Quick test_scheme_strings;
          Alcotest.test_case "paper-scale fabric" `Quick test_paper_scale_builds_and_runs;
          Alcotest.test_case "themis <= ecmp" `Quick test_spray_outperforms_ecmp_on_collisions;
        ] );
    ]
