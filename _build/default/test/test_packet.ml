(* Packet constructors, sizes, direction. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let conn = Flow_id.make ~src:1 ~dst:2 ~qpn:7

let test_flow_id () =
  Alcotest.(check bool) "equal" true (Flow_id.equal conn conn);
  Alcotest.(check bool) "not equal" false
    (Flow_id.equal conn (Flow_id.make ~src:1 ~dst:2 ~qpn:8));
  Alcotest.(check string) "pp" "1->2/qp7" (Format.asprintf "%a" Flow_id.pp conn);
  let tbl = Flow_id.Table.create 4 in
  Flow_id.Table.replace tbl conn 42;
  Alcotest.(check (option int)) "table" (Some 42) (Flow_id.Table.find_opt tbl conn)

let test_data_packet () =
  Packet.reset_uid_counter ();
  let pkt =
    Packet.data ~conn ~sport:99 ~psn:(Psn.of_int 5) ~payload:1500
      ~last_of_msg:false ~birth:0 ()
  in
  Alcotest.(check int) "size includes overhead" (1500 + Headers.data_overhead)
    pkt.Packet.size;
  Alcotest.(check int) "src" 1 pkt.Packet.src_node;
  Alcotest.(check int) "dst" 2 pkt.Packet.dst_node;
  Alcotest.(check bool) "is_data" true (Packet.is_data pkt);
  Alcotest.(check bool) "not nack" false (Packet.is_nack pkt);
  Alcotest.(check int) "payload" 1500 (Packet.payload_bytes pkt);
  Alcotest.(check bool) "data is ect" true (pkt.Packet.ecn = Headers.Ect)

let test_control_direction () =
  (* Acknowledgements travel receiver -> sender. *)
  let ack = Packet.ack ~conn ~sport:99 ~psn:Psn.zero ~birth:0 in
  Alcotest.(check int) "ack src is conn dst" 2 ack.Packet.src_node;
  Alcotest.(check int) "ack dst is conn src" 1 ack.Packet.dst_node;
  Alcotest.(check int) "ack size" Headers.ack_bytes ack.Packet.size;
  Alcotest.(check bool) "control not ect" true (ack.Packet.ecn = Headers.Not_ect);
  let nack = Packet.nack ~conn ~sport:99 ~epsn:(Psn.of_int 3) ~birth:0 in
  Alcotest.(check bool) "is_nack" true (Packet.is_nack nack);
  Alcotest.(check int) "nack payload" 0 (Packet.payload_bytes nack);
  let cnp = Packet.cnp ~conn ~sport:99 ~birth:0 in
  Alcotest.(check int) "cnp size" Headers.cnp_bytes cnp.Packet.size

let test_uid_fresh () =
  Packet.reset_uid_counter ();
  let a = Packet.ack ~conn ~sport:1 ~psn:Psn.zero ~birth:0 in
  let b = Packet.ack ~conn ~sport:1 ~psn:Psn.zero ~birth:0 in
  Alcotest.(check bool) "distinct uids" true (a.Packet.uid <> b.Packet.uid)

let test_header_sizes () =
  Alcotest.(check int) "data overhead"
    (18 + 20 + 8 + 12 + 4)
    Headers.data_overhead;
  Alcotest.(check int) "ack" (Headers.data_overhead + 4) Headers.ack_bytes;
  Alcotest.(check int) "roce port" 4791 Headers.roce_dst_port

let test_pp_smoke () =
  let pkt =
    Packet.data ~conn ~sport:9 ~psn:(Psn.of_int 5) ~payload:100 ~last_of_msg:true
      ~retransmission:true ~birth:0 ()
  in
  let s = Format.asprintf "%a" Packet.pp pkt in
  Alcotest.(check bool) "mentions retx" true (contains s "retx");
  Alcotest.(check bool) "mentions last" true (contains s "last")

let test_ecn_pp () =
  Alcotest.(check string) "ce" "ce" (Format.asprintf "%a" Headers.pp_ecn Headers.Ce);
  Alcotest.(check string) "ect" "ect" (Format.asprintf "%a" Headers.pp_ecn Headers.Ect)

let () =
  Alcotest.run "packet"
    [
      ( "packet",
        [
          Alcotest.test_case "flow id" `Quick test_flow_id;
          Alcotest.test_case "data" `Quick test_data_packet;
          Alcotest.test_case "control direction" `Quick test_control_direction;
          Alcotest.test_case "uid" `Quick test_uid_fresh;
          Alcotest.test_case "header sizes" `Quick test_header_sizes;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
          Alcotest.test_case "ecn pp" `Quick test_ecn_pp;
        ] );
    ]
