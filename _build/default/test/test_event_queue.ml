(* The binary-heap event queue: ordering, stability, growth. *)

let test_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "size" 0 (Event_queue.size q);
  Alcotest.(check bool) "pop none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Event_queue.peek_time q = None)

let test_ordering () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.add q ~time:t t) [ 5; 1; 9; 3; 7 ];
  let order = List.init 5 (fun _ -> fst (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] order

let test_stability () =
  (* Same-time events pop in insertion order. *)
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.add q ~time:10 v) [ 1; 2; 3; 4; 5 ];
  Event_queue.add q ~time:5 0;
  let order = List.init 6 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "fifo within time" [ 0; 1; 2; 3; 4; 5 ] order

let test_interleaved () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3 "a";
  Alcotest.(check bool) "peek 3" true (Event_queue.peek_time q = Some 3);
  Event_queue.add q ~time:1 "b";
  Alcotest.(check bool) "peek 1" true (Event_queue.peek_time q = Some 1);
  Alcotest.(check bool) "pop b" true (Event_queue.pop q = Some (1, "b"));
  Event_queue.add q ~time:2 "c";
  Alcotest.(check bool) "pop c" true (Event_queue.pop q = Some (2, "c"));
  Alcotest.(check bool) "pop a" true (Event_queue.pop q = Some (3, "a"))

let test_growth () =
  let q = Event_queue.create () in
  for i = 1000 downto 1 do
    Event_queue.add q ~time:i i
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  for i = 1 to 1000 do
    match Event_queue.pop q with
    | Some (t, v) ->
        Alcotest.(check int) "time" i t;
        Alcotest.(check int) "value" i v
    | None -> Alcotest.fail "queue drained early"
  done

let test_clear () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:1 1;
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let prop_heap_sorts =
  QCheck.Test.make ~name:"pop order equals stable sort" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 50))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.add q ~time:t (t, i)) times;
      let popped = ref [] in
      let rec drain () =
        match Event_queue.pop q with
        | Some (_, v) ->
            popped := v :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      let got = List.rev !popped in
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      got = expected)

let () =
  Alcotest.run "event_queue"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "stability" `Quick test_stability;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "clear" `Quick test_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
    ]
