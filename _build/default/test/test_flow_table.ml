(* The destination-ToR flow table. *)

let conn n = Flow_id.make ~src:1 ~dst:2 ~qpn:n

let test_find_or_add () =
  let t = Flow_table.create ~queue_capacity:16 in
  Alcotest.(check int) "empty" 0 (Flow_table.size t);
  let e1 = Flow_table.find_or_add t (conn 1) in
  let e1' = Flow_table.find_or_add t (conn 1) in
  Alcotest.(check bool) "same entry" true (e1 == e1');
  Alcotest.(check int) "one entry" 1 (Flow_table.size t);
  Alcotest.(check bool) "fresh invalid" false e1.Flow_table.valid;
  Alcotest.(check int) "queue capacity" 16 (Psn_queue.capacity e1.Flow_table.queue)

let test_find_remove () =
  let t = Flow_table.create ~queue_capacity:4 in
  ignore (Flow_table.find_or_add t (conn 1));
  Alcotest.(check bool) "found" true (Flow_table.find t (conn 1) <> None);
  Alcotest.(check bool) "absent" true (Flow_table.find t (conn 2) = None);
  Flow_table.remove t (conn 1);
  Alcotest.(check bool) "removed" true (Flow_table.find t (conn 1) = None)

let test_iter () =
  let t = Flow_table.create ~queue_capacity:4 in
  for i = 1 to 5 do
    ignore (Flow_table.find_or_add t (conn i))
  done;
  let count = ref 0 in
  Flow_table.iter (fun _ _ -> incr count) t;
  Alcotest.(check int) "iterated" 5 !count

let test_memory () =
  Alcotest.(check int) "entry bytes (Section 4)" 20 Flow_table.entry_bytes;
  let t = Flow_table.create ~queue_capacity:100 in
  for i = 1 to 3 do
    ignore (Flow_table.find_or_add t (conn i))
  done;
  (* 3 entries x (20 + 100 x 1 byte). *)
  Alcotest.(check int) "memory" (3 * 120) (Flow_table.memory_bytes t)

let test_invalid () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Flow_table.create: queue_capacity") (fun () ->
      ignore (Flow_table.create ~queue_capacity:0))

let () =
  Alcotest.run "flow_table"
    [
      ( "table",
        [
          Alcotest.test_case "find_or_add" `Quick test_find_or_add;
          Alcotest.test_case "find/remove" `Quick test_find_remove;
          Alcotest.test_case "iter" `Quick test_iter;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
    ]
