(* Load-balancing policies. *)

let conn = Flow_id.make ~src:3 ~dst:4 ~qpn:2

let data psn =
  Packet.data ~conn ~sport:777 ~psn:(Psn.of_int psn) ~payload:1000
    ~last_of_msg:false ~birth:0 ()

let ack () = Packet.ack ~conn ~sport:777 ~psn:Psn.zero ~birth:0
let no_load _ = 0

let test_strings () =
  List.iter
    (fun p ->
      match Lb_policy.of_string (Lb_policy.to_string p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | Error e -> Alcotest.fail e)
    Lb_policy.all;
  Alcotest.(check bool) "unknown" true
    (Result.is_error (Lb_policy.of_string "bogus"))

let test_ecmp_stable () =
  let rng = Rng.create ~seed:1 in
  let first =
    Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data 0) ~n:8 ~load:no_load
  in
  for psn = 1 to 50 do
    Alcotest.(check int) "same path for all psns" first
      (Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data psn) ~n:8 ~load:no_load)
  done

let test_ecmp_matches_index () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "ecmp_index agrees"
    (Lb_policy.ecmp_index ~pkt:(data 0) ~n:8)
    (Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data 0) ~n:8 ~load:no_load)

let test_random_spray_spread () =
  let rng = Rng.create ~seed:2 in
  let counts = Array.make 4 0 in
  for psn = 0 to 3999 do
    let i =
      Lb_policy.choose Lb_policy.Random_spray ~rng ~pkt:(data psn) ~n:4
        ~load:no_load
    in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_adaptive_picks_min () =
  let rng = Rng.create ~seed:3 in
  let load i = [| 500; 100; 900; 300 |].(i) in
  Alcotest.(check int) "min queue" 1
    (Lb_policy.choose Lb_policy.Adaptive ~rng ~pkt:(data 0) ~n:4 ~load)

let test_adaptive_tie_break_uniform () =
  let rng = Rng.create ~seed:4 in
  let load _ = 0 in
  let counts = Array.make 4 0 in
  for psn = 0 to 3999 do
    let i = Lb_policy.choose Lb_policy.Adaptive ~rng ~pkt:(data psn) ~n:4 ~load in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "ties spread" true (c > 800 && c < 1200))
    counts

let test_psn_spray_eq1 () =
  let rng = Rng.create ~seed:5 in
  let n = 4 in
  let base =
    Spray.base_for_flow conn ~sport:777 ~paths:n
  in
  for psn = 0 to 63 do
    Alcotest.(check int) "Eq. 1"
      (((psn mod n) + base) mod n)
      (Lb_policy.choose Lb_policy.Psn_spray ~rng ~pkt:(data psn) ~n ~load:no_load)
  done

let test_control_always_ecmp () =
  let rng = Rng.create ~seed:6 in
  let expected = Lb_policy.ecmp_index ~pkt:(ack ()) ~n:4 in
  List.iter
    (fun policy ->
      for _ = 1 to 10 do
        Alcotest.(check int) "control pinned" expected
          (Lb_policy.choose policy ~rng ~pkt:(ack ()) ~n:4 ~load:no_load)
      done)
    Lb_policy.all

let test_single_candidate () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun policy ->
      Alcotest.(check int) "only choice" 0
        (Lb_policy.choose policy ~rng ~pkt:(data 5) ~n:1 ~load:no_load))
    Lb_policy.all

let test_no_candidates () =
  let rng = Rng.create ~seed:8 in
  Alcotest.check_raises "empty" (Invalid_argument "Lb_policy.choose: no candidates")
    (fun () ->
      ignore (Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data 0) ~n:0 ~load:no_load))

let prop_choose_in_range =
  QCheck.Test.make ~name:"choice always within candidates" ~count:500
    QCheck.(triple (int_range 1 16) (int_range 0 10_000) (int_range 0 3))
    (fun (n, psn, which) ->
      let rng = Rng.create ~seed:9 in
      let policy = List.nth Lb_policy.all which in
      let i = Lb_policy.choose policy ~rng ~pkt:(data psn) ~n ~load:no_load in
      i >= 0 && i < n)

let () =
  Alcotest.run "lb_policy"
    [
      ( "policies",
        [
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "ecmp stable" `Quick test_ecmp_stable;
          Alcotest.test_case "ecmp index" `Quick test_ecmp_matches_index;
          Alcotest.test_case "random spread" `Quick test_random_spray_spread;
          Alcotest.test_case "adaptive min" `Quick test_adaptive_picks_min;
          Alcotest.test_case "adaptive ties" `Quick test_adaptive_tie_break_uniform;
          Alcotest.test_case "psn spray Eq.1" `Quick test_psn_spray_eq1;
          Alcotest.test_case "control ecmp" `Quick test_control_always_ecmp;
          Alcotest.test_case "single candidate" `Quick test_single_candidate;
          Alcotest.test_case "no candidates" `Quick test_no_candidates;
          QCheck_alcotest.to_alcotest prop_choose_in_range;
        ] );
    ]
