(* End-to-end Themis on a 3-tier fat tree: the sport-rewrite deployment
   (Section 3.2's PathMap mode). *)

let build ?(k = 4) ~themis () =
  Fat_tree_net.build (Fat_tree_net.default_params ~k ~themis ())

let inter_pod_pair net =
  let ft = Fat_tree_net.fat_tree net in
  let hosts = ft.Fat_tree.hosts in
  let a = hosts.(0) in
  let b = hosts.(Array.length hosts - 1) in
  assert (Fat_tree.pod_of_host ft a <> Fat_tree.pod_of_host ft b);
  (a, b)

let test_inter_pod_flow_completes () =
  let net = build ~themis:true () in
  let src, dst = inter_pod_pair net in
  let qp = Fat_tree_net.connect net ~src ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun t -> done_at := Some t);
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes" true (!done_at <> None);
  Alcotest.(check int) "delivered" 1_000_000
    (Rnic.delivered_bytes (Fat_tree_net.nic net ~host:dst));
  Alcotest.(check bool) "sport rewriting happened" true
    (Fat_tree_net.sprayed_packets net > 0)

let test_rewrite_spreads_over_all_paths () =
  (* With (k/2)^2 = 4 inter-pod paths, all aggs of the source pod and all
     cores must carry data. *)
  let net = build ~themis:true () in
  let ft = Fat_tree_net.fat_tree net in
  let src, dst = inter_pod_pair net in
  let qp = Fat_tree_net.connect net ~src ~dst in
  Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun _ -> ());
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  let src_pod = Fat_tree.pod_of_host ft src in
  let half = ft.Fat_tree.k / 2 in
  for a = 0 to half - 1 do
    let agg = ft.Fat_tree.aggs.((src_pod * half) + a) in
    Alcotest.(check bool)
      (Printf.sprintf "agg %d used" a)
      true
      (Switch.rx_packets (Fat_tree_net.switch net ~node:agg) > 0)
  done;
  Array.iteri
    (fun i core ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d used" i)
        true
        (Switch.rx_packets (Fat_tree_net.switch net ~node:core) > 0))
    ft.Fat_tree.cores

let test_no_loss_no_spurious_retx () =
  (* The headline invariant carried over to three tiers: spraying without
     loss produces zero NACKs at senders and zero spurious
     retransmissions, even with concurrent reordering flows. *)
  let net = build ~themis:true () in
  let ft = Fat_tree_net.fat_tree net in
  let hosts = ft.Fat_tree.hosts in
  let n = Array.length hosts in
  let completed = ref 0 in
  (* Cross-pod ring: host i -> host (i + n/2) mod n. *)
  let flows = ref 0 in
  Array.iteri
    (fun i src ->
      let dst = hosts.((i + (n / 2)) mod n) in
      if Fat_tree.pod_of_host ft src <> Fat_tree.pod_of_host ft dst then begin
        incr flows;
        let qp = Fat_tree_net.connect net ~src ~dst in
        Rnic.post_send qp ~bytes:500_000 ~on_complete:(fun _ -> incr completed)
      end)
    hosts;
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  Alcotest.(check int) "all complete" !flows !completed;
  Alcotest.(check int) "no nacks delivered" 0
    (Fat_tree_net.total_nacks_delivered net);
  Alcotest.(check int) "no spurious retx" 0 (Fat_tree_net.total_retx_packets net);
  match Fat_tree_net.themis_totals net with
  | None -> Alcotest.fail "themis stats expected"
  | Some t ->
      Alcotest.(check int) "all NACKs blocked" t.Network.nacks_seen
        t.Network.nacks_blocked

let test_loss_recovered () =
  let net = build ~themis:true () in
  let ft = Fat_tree_net.fat_tree net in
  let src, dst = inter_pod_pair net in
  let qp = Fat_tree_net.connect net ~src ~dst in
  (* Drop packets on the source edge's first agg uplink. *)
  let edge = Fat_tree.tor_of_host ft src in
  let src_pod = Fat_tree.pod_of_host ft src in
  let agg = ft.Fat_tree.aggs.(src_pod * (ft.Fat_tree.k / 2)) in
  let port = Option.get (Switch.port_to (Fat_tree_net.switch net ~node:edge) ~peer:agg) in
  Port.inject_drops port 3;
  let done_at = ref None in
  Rnic.post_send qp ~bytes:1_000_000 ~on_complete:(fun t -> done_at := Some t);
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes despite loss" true (!done_at <> None);
  Alcotest.(check int) "all bytes" 1_000_000
    (Rnic.delivered_bytes (Fat_tree_net.nic net ~host:dst));
  Alcotest.(check bool) "retransmitted" true
    (Fat_tree_net.total_retx_packets net >= 3)

let test_intra_pod_safe () =
  (* Residue aliasing on intra-pod paths must never break delivery. *)
  let net = build ~themis:true () in
  let ft = Fat_tree_net.fat_tree net in
  let src = ft.Fat_tree.hosts.(0) in
  (* A host under a different edge of the same pod. *)
  let half = ft.Fat_tree.k / 2 in
  let dst = ft.Fat_tree.hosts.(half) in
  assert (Fat_tree.pod_of_host ft src = Fat_tree.pod_of_host ft dst);
  assert (Fat_tree.tor_of_host ft src <> Fat_tree.tor_of_host ft dst);
  let qp = Fat_tree_net.connect net ~src ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:500_000 ~on_complete:(fun t -> done_at := Some t);
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes" true (!done_at <> None);
  Alcotest.(check int) "delivered" 500_000
    (Rnic.delivered_bytes (Fat_tree_net.nic net ~host:dst))

let test_plain_ecmp_fat_tree () =
  let net = build ~themis:false () in
  let src, dst = inter_pod_pair net in
  let qp = Fat_tree_net.connect net ~src ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:500_000 ~on_complete:(fun t -> done_at := Some t);
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes" true (!done_at <> None);
  Alcotest.(check int) "no themis" 0 (Fat_tree_net.sprayed_packets net);
  Alcotest.(check bool) "no stats" true (Fat_tree_net.themis_totals net = None)

let test_k8_builds () =
  let net = build ~k:8 ~themis:true () in
  Alcotest.(check int) "16 paths" 16 (Fat_tree_net.n_paths net);
  let src, dst = inter_pod_pair net in
  let qp = Fat_tree_net.connect net ~src ~dst in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:200_000 ~on_complete:(fun t -> done_at := Some t);
  Fat_tree_net.run net ~until:(Sim_time.sec 5);
  Alcotest.(check bool) "completes" true (!done_at <> None)

let test_invalid_k () =
  Alcotest.check_raises "k = 6"
    (Invalid_argument "Fat_tree_net.build: k/2 must be a power of two, k >= 4")
    (fun () -> ignore (build ~k:6 ~themis:true ()))

let () =
  Alcotest.run "fat_tree_net"
    [
      ( "3-tier themis",
        [
          Alcotest.test_case "inter-pod flow" `Quick test_inter_pod_flow_completes;
          Alcotest.test_case "covers all paths" `Quick test_rewrite_spreads_over_all_paths;
          Alcotest.test_case "no-loss invariant" `Quick test_no_loss_no_spurious_retx;
          Alcotest.test_case "loss recovered" `Quick test_loss_recovered;
          Alcotest.test_case "intra-pod safe" `Quick test_intra_pod_safe;
          Alcotest.test_case "plain ecmp" `Quick test_plain_ecmp_fat_tree;
          Alcotest.test_case "k=8" `Quick test_k8_builds;
          Alcotest.test_case "invalid k" `Quick test_invalid_k;
        ] );
    ]
