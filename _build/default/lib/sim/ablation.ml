type compensation_row = {
  comp_enabled : bool;
  completion_us : float;
  timeouts : int;
  compensations : int;
}

let sum_timeouts net =
  Array.fold_left
    (fun acc host ->
      List.fold_left
        (fun acc s -> acc + Sender.timeouts s)
        acc
        (Rnic.senders (Network.nic net ~host)))
    0
    (Network.fabric net).Leaf_spine.hosts

let compensation ?(drops = 4) ?(seed = 5) () =
  let run comp_enabled =
    let params =
      {
        (Network.default_params ~fabric:Leaf_spine.motivation
           ~scheme:(Network.Themis { compensation = comp_enabled }))
        with
        Network.seed;
      }
    in
    let net = Network.build params in
    let ls = Network.fabric net in
    let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
    let qp = Network.connect net ~src:0 ~dst in
    let tor0 = ls.Leaf_spine.leaves.(0) in
    let spine0 = ls.Leaf_spine.spines.(0) in
    let uplink =
      Option.get (Switch.port_to (Network.switch net ~node:tor0) ~peer:spine0)
    in
    Port.inject_drops uplink drops;
    let done_at = ref None in
    Rnic.post_send qp ~bytes:2_000_000 ~on_complete:(fun t -> done_at := Some t);
    Network.run net ~until:(Sim_time.sec 10);
    let completion_us =
      match !done_at with
      | Some t -> Sim_time.to_us t
      | None -> Float.infinity
    in
    let compensations =
      match Network.themis_totals net with
      | Some t -> t.Network.compensation_sent
      | None -> 0
    in
    { comp_enabled; completion_us; timeouts = sum_timeouts net; compensations }
  in
  [ run true; run false ]

type queue_factor_row = {
  factor : float;
  underflow_forwards : int;
  blocked : int;
  retx : int;
  qf_completion_us : float;
}

let two_ring_flows net ~bytes ~on_all_done =
  let ls = Network.fabric net in
  let groups = Workload.motivation_groups ls in
  let remaining = ref 0 in
  let last = ref Sim_time.zero in
  Array.iter
    (fun members ->
      let n = Array.length members in
      Array.iteri
        (fun i src ->
          incr remaining;
          let qp = Network.connect net ~src ~dst:members.((i + 1) mod n) in
          Rnic.post_send qp ~bytes ~on_complete:(fun t ->
              decr remaining;
              last := Sim_time.max !last t;
              if !remaining = 0 then on_all_done !last))
        members)
    groups

let queue_factor ?(factors = [ 0.25; 0.5; 1.0; 1.5; 2.0 ])
    ?(jitter = Sim_time.zero) ?(seed = 5) () =
  List.map
    (fun factor ->
      let params =
        {
          (Network.default_params ~fabric:Leaf_spine.motivation
             ~scheme:(Network.Themis { compensation = true }))
          with
          Network.queue_factor = factor;
          last_hop_jitter = jitter;
          seed;
        }
      in
      let net = Network.build params in
      let tail = ref Float.infinity in
      two_ring_flows net ~bytes:2_000_000 ~on_all_done:(fun t ->
          tail := Sim_time.to_us t);
      Network.run net ~until:(Sim_time.sec 10);
      let t = Option.get (Network.themis_totals net) in
      {
        factor;
        underflow_forwards = t.Network.nacks_forwarded_underflow;
        blocked = t.Network.nacks_blocked;
        retx = Network.total_retx_packets net;
        qf_completion_us = !tail;
      })
    factors

type transport_row = {
  label : string;
  goodput_gbps : float;
  retx_ratio : float;
  nacks_to_sender : int;
}

let run_two_rings ~label ~scheme ~transport ~seed =
  let base = Network.default_params ~fabric:Leaf_spine.motivation ~scheme in
  let cc = Dcqcn.with_ti_td base.Network.nic.Rnic.cc ~ti_us:55. ~td_us:50. in
  let params =
    {
      base with
      Network.nic = { base.Network.nic with Rnic.transport; cc };
      seed;
    }
  in
  let net = Network.build params in
  let bytes = 2_000_000 in
  let completions = ref [] in
  let ls = Network.fabric net in
  let groups = Workload.motivation_groups ls in
  Array.iter
    (fun members ->
      let n = Array.length members in
      Array.iteri
        (fun i src ->
          let qp = Network.connect net ~src ~dst:members.((i + 1) mod n) in
          Rnic.post_send qp ~bytes ~on_complete:(fun t ->
              completions := t :: !completions))
        members)
    groups;
  Network.run net ~until:(Sim_time.sec 10);
  let goodputs =
    List.map
      (fun t -> float_of_int bytes *. 8. /. 1e9 /. Sim_time.to_sec t)
      !completions
  in
  let n = Stdlib.max 1 (List.length goodputs) in
  let data = Network.total_data_packets net in
  {
    label;
    goodput_gbps = List.fold_left ( +. ) 0. goodputs /. float_of_int n;
    retx_ratio =
      (if data > 0 then
         float_of_int (Network.total_retx_packets net) /. float_of_int data
       else 0.);
    nacks_to_sender = Network.total_nacks_delivered net;
  }

let transports ?(seed = 5) () =
  [
    run_two_rings ~label:"GBN (CX-4/5)" ~scheme:Network.Random_spray
      ~transport:`Gbn ~seed;
    run_two_rings ~label:"NIC-SR (CX-6/7)" ~scheme:Network.Random_spray
      ~transport:`Sr ~seed;
    run_two_rings ~label:"NIC-SR + Themis"
      ~scheme:(Network.Themis { compensation = true })
      ~transport:`Sr ~seed;
    run_two_rings ~label:"Ideal" ~scheme:Network.Random_spray ~transport:`Ideal
      ~seed;
  ]

let filtering ?(seed = 5) () =
  [
    run_two_rings ~label:"PSN spray, no filtering"
      ~scheme:Network.Psn_spray_only ~transport:`Sr ~seed;
    run_two_rings ~label:"PSN spray + Themis-D"
      ~scheme:(Network.Themis { compensation = true })
      ~transport:`Sr ~seed;
  ]

type memory_row = {
  tor_flow_tables_bytes : int;
  model_bytes : int;
  qps : int;
}

let memory_footprint ?(seed = 5) () =
  let fabric = Leaf_spine.motivation in
  let params =
    {
      (Network.default_params ~fabric
         ~scheme:(Network.Themis { compensation = true }))
      with
      Network.seed = seed;
    }
  in
  let net = Network.build params in
  let ls = Network.fabric net in
  (* Every host opens a QP to every cross-rack host: 4 x 4 x 2 = 32 QPs. *)
  let qps = ref 0 in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if
            Leaf_spine.leaf_index_of_host ls src
            <> Leaf_spine.leaf_index_of_host ls dst
          then begin
            incr qps;
            let qp = Network.connect net ~src ~dst in
            Rnic.post_send qp ~bytes:100_000 ~on_complete:(fun _ -> ())
          end)
        ls.Leaf_spine.hosts)
    ls.Leaf_spine.hosts;
  Network.run net ~until:(Sim_time.sec 5);
  let measured =
    List.fold_left
      (fun acc sw ->
        match Switch.themis_d sw with
        | Some d -> acc + Flow_table.memory_bytes (Themis_d.flow_table d)
        | None -> acc)
      0 (Network.tor_switches net)
  in
  (* The analytical model at the same shape: per-ToR QP count is the
     cross-rack QPs terminating there; PathMap excluded (we measure the
     flow-table side of Eq. 4). *)
  let per_qp =
    Flow_table.entry_bytes
    + Psn_queue.capacity_for ~bw:fabric.Leaf_spine.host_bw
        ~rtt:(Network.last_hop_rtt params)
        ~mtu:(params.Network.nic.Rnic.mtu + Headers.data_overhead)
        ~factor:params.Network.queue_factor
  in
  { tor_flow_tables_bytes = measured; model_bytes = per_qp * !qps; qps = !qps }
