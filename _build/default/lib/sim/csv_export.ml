let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let series_to_string ~header:(hx, hy) series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (quote hx ^ "," ^ quote hy ^ "\n");
  List.iter
    (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%g,%g\n" x y))
    series;
  Buffer.contents buf

let write_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let write_series ~path ~header series =
  write_string path (series_to_string ~header series)

let table_to_string ~columns rows =
  let n = List.length columns in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map quote columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      if List.length row <> n then
        invalid_arg "Csv_export.table_to_string: row width mismatch";
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write_table ~path ~columns rows =
  write_string path (table_to_string ~columns rows)

let fig5_to_string ~sweep ~rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "scheme";
  List.iter
    (fun (ti, td) -> Buffer.add_string buf (Printf.sprintf ",TI%g_TD%g" ti td))
    sweep;
  Buffer.add_char buf '\n';
  List.iter
    (fun (scheme, values) ->
      Buffer.add_string buf (quote scheme);
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%g" v)) values;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
