(** CSV rendering of experiment outputs, for plotting the figures with
    external tools (gnuplot / matplotlib).

    Writers are deliberately dependency-free: columns are numeric or
    plain labels, quoted only when needed. *)

val series_to_string : header:string * string -> (float * float) list -> string
(** One [(x, y)] series with a two-column header row. *)

val write_series :
  path:string -> header:string * string -> (float * float) list -> unit

val table_to_string : columns:string list -> float list list -> string
(** Rows of numbers under named columns (row length must match). *)

val write_table : path:string -> columns:string list -> float list list -> unit

val fig5_to_string :
  sweep:(float * float) list ->
  rows:(string * float list) list ->
  string
(** The Fig. 5 matrix: one row per scheme, one column per (TI, TD). *)
