lib/sim/workload.mli: Leaf_spine Network Rng Rnic Runner Schedule Sim_time
