lib/sim/workload.ml: Array Hashtbl Leaf_spine List Network Rng Rnic Runner Schedule
