lib/sim/experiment.mli: Leaf_spine Network Rnic Sim_time
