lib/sim/ablation.mli: Sim_time
