lib/sim/csv_export.mli:
