lib/sim/network.ml: Array Ecn Engine Hashtbl Headers Lb_policy Leaf_spine List Option Packet Port Printf Psn_queue Rate Rng Rnic Routing Sim_time Switch Themis_d Themis_s Topology
