lib/sim/experiment.ml: Array Dcqcn Engine Flow_id Leaf_spine List Network Option Packet Printf Rnic Schedule Sim_time Stats Stdlib Workload
