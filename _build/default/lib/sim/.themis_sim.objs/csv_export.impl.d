lib/sim/csv_export.ml: Buffer Fun List Printf String
