lib/sim/fat_tree_net.mli: Engine Fat_tree Network Rate Rnic Sim_time Switch
