lib/sim/network.mli: Engine Leaf_spine Rnic Routing Sim_time Switch
