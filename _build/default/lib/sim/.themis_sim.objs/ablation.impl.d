lib/sim/ablation.ml: Array Dcqcn Float Flow_table Headers Leaf_spine List Network Option Port Psn_queue Rnic Sender Sim_time Stdlib Switch Themis_d Workload
