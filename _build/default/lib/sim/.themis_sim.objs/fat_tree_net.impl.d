lib/sim/fat_tree_net.ml: Array Ecn Engine Fat_tree Hashtbl Headers Lb_policy List Network Packet Path_map Port Printf Psn_queue Rate Rng Rnic Routing Sim_time Switch Themis_d Themis_s Topology
