(** Ablation studies for the design choices DESIGN.md calls out.

    These are not paper figures; they quantify why each Themis mechanism
    exists by disabling it:

    - {!compensation}: blocked NACKs with vs without the §3.4 compensation
      machinery, under real fabric loss — without it, every genuinely lost
      packet that Themis filtered must wait for the sender's RTO.
    - {!queue_factor}: the §4 ring-sizing factor F — too small a ring
      drains before the tPSN is found and Themis must conservatively
      forward (spurious retransmissions return).
    - {!transports}: the RNIC generations of §2.2 (GBN, NIC-SR, NIC-SR +
      Themis, Ideal) on the same sprayed workload.
    - {!filtering}: PSN spraying alone vs PSN spraying + NACK filtering —
      Eq. 1 without Themis-D inherits all of NIC-SR's pathologies. *)

type compensation_row = {
  comp_enabled : bool;
  completion_us : float;
  timeouts : int;
  compensations : int;
}

val compensation : ?drops:int -> ?seed:int -> unit -> compensation_row list
(** One cross-rack flow with [drops] forced fabric losses, compensation on
    and off. *)

type queue_factor_row = {
  factor : float;
  underflow_forwards : int;
  blocked : int;
  retx : int;
  qf_completion_us : float;
}

val queue_factor :
  ?factors:float list -> ?jitter:Sim_time.t -> ?seed:int -> unit ->
  queue_factor_row list
(** The motivation workload under Themis with the ring sized by each
    factor (paper default 1.5).  [jitter] adds uniform host->ToR delay
    fluctuation, the condition F provisions for: undersized rings then
    overwrite triggers and misvalidate. *)

type transport_row = {
  label : string;
  goodput_gbps : float;
  retx_ratio : float;
  nacks_to_sender : int;
}

val transports : ?seed:int -> unit -> transport_row list
(** GBN / NIC-SR / NIC-SR + Themis / Ideal on the Fig. 1 workload. *)

val filtering : ?seed:int -> unit -> transport_row list
(** PSN spraying with and without destination-side NACK filtering. *)

type memory_row = {
  tor_flow_tables_bytes : int;  (** Measured: sum over ToRs of Eq. 4 state. *)
  model_bytes : int;  (** Predicted by {!Memory_model} for the same shape. *)
  qps : int;
}

val memory_footprint : ?seed:int -> unit -> memory_row
(** Runs a multi-QP workload, then compares the flow-table + ring memory
    actually allocated on the ToRs against the Section 4 analytical
    model evaluated at the same QP count, bandwidth, RTT and MTU. *)
