(** The requester-side transport of a commodity RNIC: hardware rate pacing
    driven by DCQCN, selective-repeat (or go-back-N) retransmission, and
    the NACK reaction of Section 2.2 — on a NACK the RNIC retransmits
    exactly the packet named by the carried ePSN and applies a rate
    "slow start" (delegated to {!Dcqcn}).

    Sequencing is monotonic internally; packets carry the truncated 24-bit
    PSN.  One [Sender.t] is one sending QP. *)

type mode = Sr_retx | Gbn_retx

type config = {
  mtu : int;  (** Payload bytes per full packet. *)
  mode : mode;
  window : int;  (** Max unacknowledged packets in flight. *)
  rto : Sim_time.t;  (** Retransmission timeout. *)
  cc : Dcqcn.config;
}

type t

val create :
  engine:Engine.t ->
  conn:Flow_id.t ->
  sport:int ->
  config:config ->
  line_rate:Rate.t ->
  transmit:(Packet.t -> unit) ->
  t

val post : t -> bytes:int -> on_complete:(Sim_time.t -> unit) -> unit
(** Queue a message of [bytes]; [on_complete] fires when every packet of
    the message has been cumulatively acknowledged. *)

val on_ack : t -> Psn.t -> unit
val on_nack : t -> Psn.t -> unit
val on_cnp : t -> unit

val conn : t -> Flow_id.t
val sport : t -> int
val rate : t -> Rate.t
val cc : t -> Dcqcn.t

val outstanding : t -> int
(** Packets sent but not yet cumulatively acknowledged. *)

val idle : t -> bool
(** Everything posted has been acknowledged. *)

(** Counters. *)

val data_packets_sent : t -> int
(** Including retransmissions. *)

val retx_packets_sent : t -> int
val nacks_received : t -> int
val cnps_received : t -> int
val timeouts : t -> int
val bytes_completed : t -> int
