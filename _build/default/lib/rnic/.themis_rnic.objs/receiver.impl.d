lib/rnic/receiver.ml: Hashtbl
