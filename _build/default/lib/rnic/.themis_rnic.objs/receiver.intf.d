lib/rnic/receiver.mli:
