lib/rnic/sender.mli: Dcqcn Engine Flow_id Packet Psn Rate Sim_time
