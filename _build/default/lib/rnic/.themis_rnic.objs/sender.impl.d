lib/rnic/sender.ml: Dcqcn Engine Flow_id Hashtbl Packet Printf Psn Queue Rate Sim_time Stdlib
