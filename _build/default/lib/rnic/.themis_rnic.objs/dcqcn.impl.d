lib/rnic/dcqcn.ml: Engine Rate Sim_time
