lib/rnic/rnic.mli: Dcqcn Engine Flow_id Packet Port Rate Sender Sim_time
