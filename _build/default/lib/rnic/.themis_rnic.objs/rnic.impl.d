lib/rnic/rnic.ml: Dcqcn Ecmp_hash Engine Flow_id Format Headers Packet Port Psn Rate Receiver Sender Sim_time
