lib/rnic/dcqcn.mli: Engine Rate Sim_time
