type t = int

let bits = 24
let modulus = 1 lsl bits
let mask = modulus - 1
let half = modulus / 2
let zero = 0
let of_int x = x land mask
let to_int x = x
let succ x = (x + 1) land mask
let add x n = (x + n) land mask
let distance ~from x = (x - from) land mask

let compare_circular a b =
  if a = b then 0
  else
    let d = distance ~from:a b in
    if d < half then -1 else 1

let lt a b = compare_circular a b < 0
let le a b = compare_circular a b <= 0
let gt a b = compare_circular a b > 0
let ge a b = compare_circular a b >= 0
let equal = Int.equal

let mod_paths psn n =
  if n <= 0 then invalid_arg "Psn.mod_paths: paths must be positive";
  psn mod n

let same_residue a b ~paths = mod_paths a paths = mod_paths b paths

let unwrap ~near psn =
  let d = (psn - near) land mask in
  if d < half then near + d else near + d - modulus
let pp ppf x = Format.fprintf ppf "psn:%d" x
