let ethernet_bytes = 18
let ipv4_bytes = 20
let udp_bytes = 8
let bth_bytes = 12
let aeth_bytes = 4
let icrc_bytes = 4
let data_overhead = ethernet_bytes + ipv4_bytes + udp_bytes + bth_bytes + icrc_bytes
let ack_bytes = data_overhead + aeth_bytes
let cnp_bytes = data_overhead + aeth_bytes
let pause_bytes = 64
let roce_dst_port = 4791

type ecn = Not_ect | Ect | Ce

let pp_ecn ppf = function
  | Not_ect -> Format.pp_print_string ppf "not-ect"
  | Ect -> Format.pp_print_string ppf "ect"
  | Ce -> Format.pp_print_string ppf "ce"
