(** Identity of an RDMA connection (a queue pair).

    A connection is oriented: [src] is the requester (data sender) and [dst]
    the responder.  Acknowledgements travel dst -> src but carry the same
    connection identity, which is what the Themis-D flow table is keyed on. *)

type t = { src : int; dst : int; qpn : int }
(** [src]/[dst] are host node ids; [qpn] is the destination QP number. *)

val make : src:int -> dst:int -> qpn:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
