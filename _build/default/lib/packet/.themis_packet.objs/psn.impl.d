lib/packet/psn.ml: Format Int
