lib/packet/flow_id.mli: Format Hashtbl
