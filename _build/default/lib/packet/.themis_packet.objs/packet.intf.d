lib/packet/packet.mli: Flow_id Format Headers Psn Sim_time
