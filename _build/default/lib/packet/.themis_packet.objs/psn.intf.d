lib/packet/psn.mli: Format
