lib/packet/flow_id.ml: Format Hashtbl Stdlib
