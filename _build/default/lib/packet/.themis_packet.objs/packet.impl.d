lib/packet/packet.ml: Flow_id Format Headers Psn Sim_time
