lib/packet/headers.ml: Format
