(** 24-bit packet sequence numbers (PSNs) with wrap-around arithmetic.

    RoCEv2's Base Transport Header carries a 24-bit PSN.  Comparisons are
    circular (serial-number arithmetic): [a] is "before" [b] when the
    forward distance from [a] to [b] is less than half the space.  All
    Themis logic (Eq. 1-3 of the paper) is expressed over these values. *)

type t = private int

val bits : int
(** 24. *)

val modulus : int
(** [2^24]. *)

val zero : t

val of_int : int -> t
(** Reduce an arbitrary integer into PSN space. *)

val to_int : t -> int

val succ : t -> t
val add : t -> int -> t

val distance : from:t -> t -> int
(** Forward circular distance in [[0, modulus)]. *)

val compare_circular : t -> t -> int
(** [< 0] when the first argument precedes the second on the circle. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val equal : t -> t -> bool

val mod_paths : t -> int -> int
(** [mod_paths psn n] is [psn mod n] — the path-selection residue of Eq. 1.
    [n > 0]. *)

val same_residue : t -> t -> paths:int -> bool
(** Eq. 3: do the two PSNs map to the same path residue over [paths]
    equal-cost paths? *)

val unwrap : near:int -> t -> int
(** Lift a 24-bit PSN back to the unbounded sequence number closest to
    [near] (endpoints track sequences as plain integers and only truncate
    on the wire).  Exact whenever the true value is within [2^23] of
    [near]. *)

val pp : Format.formatter -> t -> unit
