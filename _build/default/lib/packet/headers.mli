(** Wire-format accounting for RoCEv2 frames.

    The simulator does not serialize bits; it only needs byte counts that
    match what a RoCEv2 deployment puts on the wire, so that link
    utilization and serialization delays are realistic. *)

val ethernet_bytes : int
(** Ethernet header + FCS (18). *)

val ipv4_bytes : int
(** 20. *)

val udp_bytes : int
(** 8. *)

val bth_bytes : int
(** RoCEv2 Base Transport Header (12). *)

val aeth_bytes : int
(** ACK Extension Header (4), present on ACK/NACK. *)

val icrc_bytes : int
(** Invariant CRC (4). *)

val data_overhead : int
(** Per-data-packet header bytes: Eth + IP + UDP + BTH + ICRC = 62. *)

val ack_bytes : int
(** Total size of an ACK/NACK frame (headers + AETH). *)

val cnp_bytes : int
(** Total size of a Congestion Notification Packet. *)

val pause_bytes : int
(** PFC pause frame size (64). *)

val roce_dst_port : int
(** UDP destination port for RoCEv2 (4791). *)

type ecn = Not_ect | Ect | Ce
(** IP ECN codepoint (Ect covers ECT(0)/ECT(1)). *)

val pp_ecn : Format.formatter -> ecn -> unit
