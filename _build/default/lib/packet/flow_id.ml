type t = { src : int; dst : int; qpn : int }

let make ~src ~dst ~qpn = { src; dst; qpn }
let equal a b = a.src = b.src && a.dst = b.dst && a.qpn = b.qpn
let compare = Stdlib.compare

let hash t =
  let h = (t.src * 1_000_003) lxor (t.dst * 998_244_353) lxor (t.qpn * 0x9E3779B9) in
  h land max_int

let pp ppf t = Format.fprintf ppf "%d->%d/qp%d" t.src t.dst t.qpn

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
