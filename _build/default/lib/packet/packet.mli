(** Simulated packets.

    A packet travels between two host endpoints ([src_node] -> [dst_node]);
    [conn] identifies the QP connection it belongs to, always oriented from
    the data sender to the data receiver regardless of the packet's own
    direction (ACK/NACK/CNP flow backwards).

    [udp_sport] is the flow's entropy field.  ECMP hashes it; Themis-S
    rewrites it per packet to implement PSN-based spraying.  [ecn] is the IP
    ECN codepoint, set to [Ce] by switches when marking. *)

type kind =
  | Data of { psn : Psn.t; payload : int; last_of_msg : bool }
      (** [payload] bytes of user data carried under [psn]. *)
  | Ack of { psn : Psn.t }
      (** Cumulative: every PSN strictly below [psn] has been received.
          [psn] is the receiver's current ePSN. *)
  | Nack of { epsn : Psn.t }
      (** Out-of-sequence NACK carrying only the expected PSN (the
          commodity-RNIC behaviour of Section 2.2). *)
  | Cnp  (** DCQCN congestion notification. *)
  | Pause of { stop : bool }  (** PFC pause/resume (hop-local). *)

type t = {
  uid : int;  (** Unique per simulated packet; retransmissions get fresh ids. *)
  conn : Flow_id.t;
  src_node : int;
  dst_node : int;
  kind : kind;
  size : int;  (** Total bytes on the wire. *)
  mutable udp_sport : int;
  mutable ecn : Headers.ecn;
  mutable retransmission : bool;
  birth : Sim_time.t;
}

val data :
  conn:Flow_id.t ->
  sport:int ->
  psn:Psn.t ->
  payload:int ->
  last_of_msg:bool ->
  ?retransmission:bool ->
  birth:Sim_time.t ->
  unit ->
  t

val ack : conn:Flow_id.t -> sport:int -> psn:Psn.t -> birth:Sim_time.t -> t
(** Travels dst -> src of [conn]. *)

val nack : conn:Flow_id.t -> sport:int -> epsn:Psn.t -> birth:Sim_time.t -> t
val cnp : conn:Flow_id.t -> sport:int -> birth:Sim_time.t -> t

val is_data : t -> bool
val is_nack : t -> bool

val payload_bytes : t -> int
(** 0 for control packets. *)

val pp : Format.formatter -> t -> unit

val reset_uid_counter : unit -> unit
(** For test isolation. *)
