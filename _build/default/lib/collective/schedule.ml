type transfer = { src : int; dst : int; bytes : int }
type step = transfer list
type t = step list

let check ~ranks ~bytes =
  if ranks < 2 then invalid_arg "Schedule: need at least 2 ranks";
  if bytes <= 0 then invalid_arg "Schedule: bytes must be positive"

let chunk ~ranks ~bytes = Stdlib.max 1 ((bytes + ranks - 1) / ranks)

let ring_step ~ranks ~bytes =
  List.init ranks (fun r -> { src = r; dst = (r + 1) mod ranks; bytes })

let ring_steps ~ranks ~bytes ~count =
  let c = chunk ~ranks ~bytes in
  List.init count (fun _ -> ring_step ~ranks ~bytes:c)

let ring_allreduce ~ranks ~bytes =
  check ~ranks ~bytes;
  ring_steps ~ranks ~bytes ~count:(2 * (ranks - 1))

let ring_reduce_scatter ~ranks ~bytes =
  check ~ranks ~bytes;
  ring_steps ~ranks ~bytes ~count:(ranks - 1)

let ring_allgather ~ranks ~bytes =
  check ~ranks ~bytes;
  ring_steps ~ranks ~bytes ~count:(ranks - 1)

let alltoall ~ranks ~bytes =
  check ~ranks ~bytes;
  let c = chunk ~ranks ~bytes in
  [
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if src = dst then None else Some { src; dst; bytes = c })
          (List.init ranks Fun.id))
      (List.init ranks Fun.id);
  ]

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let halving_doubling_allreduce ~ranks ~bytes =
  check ~ranks ~bytes;
  if not (is_power_of_two ranks) then
    invalid_arg "Schedule.halving_doubling_allreduce: ranks must be a power of two";
  let rounds = log2 ranks in
  let exchange ~distance ~bytes_per_rank =
    List.init ranks (fun r -> { src = r; dst = r lxor distance; bytes = bytes_per_rank })
  in
  (* Recursive halving: distances 1, 2, 4...; payload halves each step. *)
  let halving =
    List.init rounds (fun s ->
        exchange ~distance:(1 lsl s)
          ~bytes_per_rank:(Stdlib.max 1 (bytes / (2 lsl s))))
  in
  (* Recursive doubling mirrors the halving phase in reverse. *)
  let doubling =
    List.init rounds (fun i ->
        let s = rounds - 1 - i in
        exchange ~distance:(1 lsl s)
          ~bytes_per_rank:(Stdlib.max 1 (bytes / (2 lsl s))))
  in
  halving @ doubling

let broadcast ~ranks ~root ~bytes =
  check ~ranks ~bytes;
  if root < 0 || root >= ranks then invalid_arg "Schedule.broadcast: root";
  (* Work in root-relative rank space: relative rank 0 is the root. *)
  let rounds =
    let rec go acc n = if n >= ranks then acc else go (acc + 1) (n * 2) in
    go 0 1
  in
  List.init rounds (fun s ->
      let distance = 1 lsl s in
      List.filter_map
        (fun rel ->
          let peer = rel + distance in
          if rel < distance && peer < ranks then
            Some
              {
                src = (rel + root) mod ranks;
                dst = (peer + root) mod ranks;
                bytes;
              }
          else None)
        (List.init ranks Fun.id))

let ring_once ~ranks ~bytes =
  check ~ranks ~bytes;
  [ ring_step ~ranks ~bytes ]

let total_bytes t =
  List.fold_left
    (fun acc step ->
      List.fold_left (fun acc tr -> acc + tr.bytes) acc step)
    0 t

let steps = List.length
let transfers t = List.fold_left (fun acc s -> acc + List.length s) 0 t

let pp_summary ppf t =
  Format.fprintf ppf "%d steps, %d transfers, %d bytes total" (steps t)
    (transfers t) (total_bytes t)
