type t = {
  post :
    src:int -> dst:int -> bytes:int -> on_complete:(Sim_time.t -> unit) -> unit;
  on_complete : Sim_time.t -> unit;
  mutable remaining_steps : Schedule.t;
  mutable step_index : int;
  mutable outstanding : int;
  mutable finished : bool;
  mutable completion : Sim_time.t option;
}

let rec launch_step t =
  match t.remaining_steps with
  | [] -> assert false
  | step :: rest ->
      t.remaining_steps <- rest;
      t.outstanding <- List.length step;
      List.iter
        (fun { Schedule.src; dst; bytes } ->
          t.post ~src ~dst ~bytes ~on_complete:(fun time ->
              transfer_done t time))
        step

and transfer_done t time =
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then begin
    t.step_index <- t.step_index + 1;
    match t.remaining_steps with
    | [] ->
        t.finished <- true;
        t.completion <- Some time;
        t.on_complete time
    | _ :: _ -> launch_step t
  end

let start ~schedule ~post ~on_complete =
  if schedule = [] then invalid_arg "Runner.start: empty schedule";
  if List.exists (fun s -> s = []) schedule then
    invalid_arg "Runner.start: empty step";
  let t =
    {
      post;
      on_complete;
      remaining_steps = schedule;
      step_index = 0;
      outstanding = 0;
      finished = false;
      completion = None;
    }
  in
  launch_step t;
  t

let finished t = t.finished
let completion_time t = t.completion
let current_step t = t.step_index
