(** Executes a {!Schedule.t} over a communication group.

    The runner is transport-agnostic: the caller supplies a [post]
    function mapping a rank-to-rank transfer onto the underlying QP.  All
    transfers of a step are posted together; the next step starts when
    every transfer of the current step has completed (the synchronized,
    bursty behaviour of collective communication).

    Many groups typically run concurrently (one runner each); the
    experiment metric is the completion time of the slowest group. *)

type t

val start :
  schedule:Schedule.t ->
  post:
    (src:int ->
    dst:int ->
    bytes:int ->
    on_complete:(Sim_time.t -> unit) ->
    unit) ->
  on_complete:(Sim_time.t -> unit) ->
  t
(** Posts the first step immediately.  [on_complete] fires (with the
    simulated completion time) once the last transfer of the last step
    has completed. *)

val finished : t -> bool
val completion_time : t -> Sim_time.t option
val current_step : t -> int
(** Index of the step currently in flight (= total steps when done). *)
