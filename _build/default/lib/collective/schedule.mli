(** Communication schedules of the collectives AI training jobs run.

    A schedule is a sequence of steps; each step is a set of point-to-point
    transfers (by group rank) that proceed in parallel, with a barrier
    between steps (the synchronized pattern of Section 2.1).  Ring
    collectives follow the standard construction: Allreduce over [n] ranks
    and [bytes] total payload is [2(n-1)] steps of [bytes/n]-sized chunks
    around the ring (reduce-scatter then all-gather); Alltoall is a single
    step in which every rank sends [bytes/n] to every other rank. *)

type transfer = { src : int; dst : int; bytes : int }
type step = transfer list
type t = step list

val ring_allreduce : ranks:int -> bytes:int -> t
val ring_reduce_scatter : ranks:int -> bytes:int -> t
val ring_allgather : ranks:int -> bytes:int -> t
val alltoall : ranks:int -> bytes:int -> t

val halving_doubling_allreduce : ranks:int -> bytes:int -> t
(** Recursive halving reduce-scatter followed by recursive doubling
    all-gather: [2 log2 n] steps; step [s] of the halving phase exchanges
    [bytes / 2^(s+1)] with the partner at distance [2^s] (NCCL's
    tree-free algorithm for power-of-two groups).  [ranks] must be a
    power of two [>= 2]. *)

val broadcast : ranks:int -> root:int -> bytes:int -> t
(** Binomial-tree broadcast from [root]: [log2 n] (rounded up) steps;
    ranks that already hold the data forward it to their mirror at the
    current distance. *)

val ring_once : ranks:int -> bytes:int -> t
(** One step in which rank [r] sends [bytes] to rank [r+1] — the
    motivation experiment's traffic pattern (Fig. 1a). *)

val total_bytes : t -> int
val steps : t -> int
val transfers : t -> int

val chunk : ranks:int -> bytes:int -> int
(** Per-rank chunk size [ceil (bytes / ranks)], at least 1. *)

val pp_summary : Format.formatter -> t -> unit
