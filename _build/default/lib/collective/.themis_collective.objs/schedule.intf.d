lib/collective/schedule.mli: Format
