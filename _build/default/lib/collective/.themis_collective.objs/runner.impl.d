lib/collective/runner.ml: List Schedule Sim_time
