lib/collective/schedule.ml: Format Fun List Stdlib
