lib/collective/runner.mli: Schedule Sim_time
