(** Simulated time.

    All simulation time is kept as an integer number of nanoseconds, which
    keeps event ordering exact (no floating-point drift) and is wide enough
    on a 63-bit [int] for ~146 years of simulated time. *)

type t = int
(** Nanoseconds since the start of the simulation. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val us_f : float -> t
(** [us_f x] is [x] microseconds, rounded to the nearest nanosecond. *)

val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val diff : t -> t -> t

val max : t -> t -> t
val min : t -> t -> t

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
