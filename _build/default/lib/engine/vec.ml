type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len

let push v x =
  let cap = Array.length v.data in
  if v.len >= cap then begin
    let ncap = Stdlib.max 16 (cap * 2) in
    let ndata = Array.make ncap x in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len
let to_list v = Array.to_list (to_array v)
