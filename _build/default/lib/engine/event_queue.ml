type 'a entry = { time : Sim_time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 256) () =
  ignore capacity;
  { heap = [||]; size = 0; next_seq = 0 }

let entry_before a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q e =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let ncap = Stdlib.max 64 (cap * 2) in
    let nheap = Array.make ncap e in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && entry_before q.heap.(l) q.heap.(!smallest) then
    smallest := l;
  if r < q.size && entry_before q.heap.(r) q.heap.(!smallest) then
    smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time payload =
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q e;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
let size q = q.size
let is_empty q = q.size = 0
let clear q = q.size <- 0
