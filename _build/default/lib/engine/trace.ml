type sink = Silent | Print | Retain

let current = ref Silent
let events : (Sim_time.t * string * string) list ref = ref []

let set_sink s = current := s
let sink () = !current
let enabled () = !current <> Silent

let emit ~time ~cat msg =
  match !current with
  | Silent -> ()
  | Print -> Format.printf "[%a] %-10s %s@." Sim_time.pp time cat msg
  | Retain -> events := (time, cat, msg) :: !events

let emitf ~time ~cat fmt =
  if !current = Silent then Format.ifprintf Format.std_formatter fmt
  else Format.kasprintf (fun msg -> emit ~time ~cat msg) fmt

let retained () = List.rev !events
let clear () = events := []
