(** Growable arrays (the few operations the simulator needs). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val push : 'a t -> 'a -> int
(** Append, returning the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
