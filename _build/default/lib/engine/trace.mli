(** Lightweight structured tracing for debugging simulations.

    Tracing is off by default and costs a single branch per call when off.
    When enabled, events are either printed immediately or retained for
    later inspection (used by the [nack_anatomy] example and by tests that
    assert on decision sequences). *)

type sink = Silent | Print | Retain

val set_sink : sink -> unit
val sink : unit -> sink

val enabled : unit -> bool

val emit : time:Sim_time.t -> cat:string -> string -> unit
(** [emit ~time ~cat msg] records one event.  [cat] is a short category tag
    such as ["themis-d"] or ["rnic"]. *)

val emitf :
  time:Sim_time.t -> cat:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when tracing
    is off. *)

val retained : unit -> (Sim_time.t * string * string) list
(** Events recorded under [Retain], oldest first. *)

val clear : unit -> unit
