module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
  let reset t = t.v <- 0
end

module Time_series = struct
  type bucket = { mutable sum : float; mutable count : int }
  type t = { width : Sim_time.t; tbl : (int, bucket) Hashtbl.t }

  let create ~bucket =
    if bucket <= 0 then invalid_arg "Time_series.create: bucket width";
    { width = bucket; tbl = Hashtbl.create 64 }

  let add t ~time v =
    let idx = time / t.width in
    match Hashtbl.find_opt t.tbl idx with
    | Some b ->
        b.sum <- b.sum +. v;
        b.count <- b.count + 1
    | None -> Hashtbl.add t.tbl idx { sum = v; count = 1 }

  let buckets t =
    Hashtbl.fold (fun idx b acc -> (idx * t.width, b.sum, b.count) :: acc) t.tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

  let means t =
    List.map (fun (ts, sum, count) -> (ts, sum /. float_of_int count)) (buckets t)

  let sums t = List.map (fun (ts, sum, _) -> (ts, sum)) (buckets t)

  let rate_per_sec t =
    let w = Sim_time.to_sec t.width in
    List.map (fun (ts, sum, _) -> (ts, sum /. w)) (buckets t)
end

module Summary = struct
  type t = { mutable samples : float list; mutable n : int }

  let create () = { samples = []; n = 0 }

  let add t v =
    t.samples <- v :: t.samples;
    t.n <- t.n + 1

  let count t = t.n
  let sum t = List.fold_left ( +. ) 0. t.samples
  let mean t = if t.n = 0 then 0. else sum t /. float_of_int t.n

  let min t =
    match t.samples with [] -> nan | x :: r -> List.fold_left Stdlib.min x r

  let max t =
    match t.samples with [] -> nan | x :: r -> List.fold_left Stdlib.max x r

  let percentile t p =
    match List.sort Float.compare t.samples with
    | [] -> nan
    | sorted ->
        let arr = Array.of_list sorted in
        let n = Array.length arr in
        let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
        arr.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
end
