(** The discrete-event simulation driver.

    An engine owns the simulated clock and a queue of pending events.  An
    event is an arbitrary closure; scheduling returns a handle that can be
    used to cancel the event before it fires.  Execution is strictly ordered
    by (time, scheduling order), so a run is a deterministic function of the
    initial schedule and the callbacks' behaviour. *)

type t

type handle
(** A scheduled event. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current simulated time. *)

val schedule : t -> delay:Sim_time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay].  [delay] must be
    non-negative. *)

val schedule_at : t -> time:Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_pending : handle -> bool

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Process events in order until the queue drains, [until] is passed, or
    [max_events] have fired.  The clock never moves backwards; when an
    [until] horizon stops the run, the clock is left at the horizon. *)

val stop : t -> unit
(** Ask a running [run] to return after the current event. *)

val events_processed : t -> int

val pending : t -> int
(** Number of scheduled-and-not-yet-fired events (including cancelled ones
    still in the queue). *)
