type t = float

let bps x = x
let gbps x = x *. 1e9
let to_gbps x = x /. 1e9
let to_bps x = x
let zero = 0.
let is_zero r = r <= 0.

let tx_time r ~bytes_ =
  assert (r > 0.);
  if bytes_ <= 0 then 0
  else
    let ns = float_of_int (bytes_ * 8) *. 1e9 /. r in
    Stdlib.max 1 (int_of_float (Float.round ns))

let bytes_in r d = int_of_float (r *. float_of_int d /. 8e9)
let min_rate = 100e6
let scale r f = Stdlib.max min_rate (r *. f)
let add a b = a +. b
let avg a b = (a +. b) /. 2.
let clamp r ~max:m = Stdlib.min m (Stdlib.max min_rate r)
let compare = Float.compare
let pp ppf r = Format.fprintf ppf "%.2fGbps" (to_gbps r)
