lib/engine/trace.ml: Format List Sim_time
