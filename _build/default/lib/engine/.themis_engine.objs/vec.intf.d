lib/engine/vec.mli:
