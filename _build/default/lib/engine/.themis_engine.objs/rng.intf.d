lib/engine/rng.mli:
