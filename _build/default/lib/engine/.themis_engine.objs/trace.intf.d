lib/engine/trace.mli: Format Sim_time
