lib/engine/stats.ml: Array Float Hashtbl List Sim_time Stdlib
