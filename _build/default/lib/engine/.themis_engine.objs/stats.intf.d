lib/engine/stats.mli: Sim_time
