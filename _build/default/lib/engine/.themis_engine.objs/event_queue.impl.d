lib/engine/event_queue.ml: Array Sim_time Stdlib
