lib/engine/sim_time.mli: Format
