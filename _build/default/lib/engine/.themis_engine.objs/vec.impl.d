lib/engine/vec.ml: Array Stdlib
