lib/engine/rate.mli: Format Sim_time
