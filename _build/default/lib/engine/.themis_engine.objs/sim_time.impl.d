lib/engine/sim_time.ml: Float Format Int Stdlib
