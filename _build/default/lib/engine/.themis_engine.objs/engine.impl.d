lib/engine/engine.ml: Event_queue Format Sim_time
