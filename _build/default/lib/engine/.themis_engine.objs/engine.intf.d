lib/engine/engine.mli: Sim_time
