lib/engine/rate.ml: Float Format Stdlib
