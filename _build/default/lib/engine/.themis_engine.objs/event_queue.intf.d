lib/engine/event_queue.mli: Sim_time
