(** Metric collection for experiments.

    Three collectors cover everything the paper's figures need:
    - {!Counter}: monotonically increasing event counts.
    - {!Time_series}: values bucketed by simulated time (retransmission ratio
      and sending rate over time, Figs. 1b/1c).
    - {!Summary}: scalar aggregation (mean/min/max/percentiles) for
      completion times and throughputs (Figs. 1d, 5a, 5b). *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Time_series : sig
  type t
  (** Accumulates [(time, value)] points into fixed-width buckets. *)

  val create : bucket:Sim_time.t -> t

  val add : t -> time:Sim_time.t -> float -> unit
  (** Add a sample into the bucket containing [time]. *)

  val buckets : t -> (Sim_time.t * float * int) list
  (** [(bucket_start, sum, count)] for every non-empty bucket, in time
      order. *)

  val means : t -> (Sim_time.t * float) list
  (** Per-bucket mean value. *)

  val sums : t -> (Sim_time.t * float) list

  val rate_per_sec : t -> (Sim_time.t * float) list
  (** Per-bucket [sum / bucket_width_in_seconds]; turns byte counts into
      bytes-per-second series. *)
end

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.99]; nearest-rank on the sorted samples. *)
end
