type t = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let us_f x = int_of_float (Float.round (x *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.
let add = ( + )
let diff = ( - )
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.4fs" (to_sec t)
