type handle = { mutable state : [ `Pending | `Cancelled | `Fired ]; action : unit -> unit }

type t = {
  queue : handle Event_queue.t;
  mutable now : Sim_time.t;
  mutable stop_requested : bool;
  mutable events_processed : int;
}

let create () =
  {
    queue = Event_queue.create ();
    now = Sim_time.zero;
    stop_requested = false;
    events_processed = 0;
  }

let now t = t.now

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: time %a is in the past (now %a)"
         Sim_time.pp time Sim_time.pp t.now);
  let h = { state = `Pending; action } in
  Event_queue.add t.queue ~time h;
  h

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) action

let cancel h = if h.state = `Pending then h.state <- `Cancelled
let is_pending h = h.state = `Pending

let run ?until ?max_events t =
  t.stop_requested <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> max_int in
  let continue = ref true in
  while !continue && not t.stop_requested && !budget > 0 do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time when time > horizon ->
        t.now <- horizon;
        continue := false
    | Some _ -> (
        match Event_queue.pop t.queue with
        | None -> continue := false
        | Some (time, h) -> (
            t.now <- time;
            match h.state with
            | `Cancelled | `Fired -> ()
            | `Pending ->
                h.state <- `Fired;
                t.events_processed <- t.events_processed + 1;
                decr budget;
                h.action ()))
  done;
  if Event_queue.is_empty t.queue then
    match until with
    | Some u when u < max_int && u > t.now -> t.now <- u
    | _ -> ()

let stop t = t.stop_requested <- true
let events_processed t = t.events_processed
let pending t = Event_queue.size t.queue
