(** A stable priority queue of timestamped events.

    Implemented as a binary min-heap keyed on [(time, sequence)].  The
    sequence number makes ordering of same-time events FIFO with respect to
    insertion, which is what makes simulation runs deterministic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val add : 'a t -> time:Sim_time.t -> 'a -> unit

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest event (ties broken by insertion order). *)

val peek_time : 'a t -> Sim_time.t option

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
