(** Transmission rates.

    Rates are stored in bits per second as a float so that congestion-control
    algorithms (which scale rates multiplicatively) compose without rounding
    gymnastics.  Conversions to simulated time round to whole nanoseconds and
    never return a zero duration for a non-empty packet. *)

type t = private float
(** Bits per second. Always [> 0.] for usable rates. *)

val bps : float -> t
val gbps : float -> t
val to_gbps : t -> float
val to_bps : t -> float

val zero : t
(** A sentinel for "no rate"; [tx_time zero] is undefined (asserts). *)

val is_zero : t -> bool

val tx_time : t -> bytes_:int -> Sim_time.t
(** [tx_time r ~bytes_] is the serialization delay of a [bytes_]-byte frame
    at rate [r], rounded up to at least 1 ns. *)

val bytes_in : t -> Sim_time.t -> int
(** [bytes_in r d] is how many bytes rate [r] moves in duration [d]. *)

val scale : t -> float -> t
(** [scale r f] is [r *. f], clamped below by [min_rate]. *)

val add : t -> t -> t
val avg : t -> t -> t

val min_rate : t
(** Floor used by congestion control (100 Mbps). *)

val clamp : t -> max:t -> t
(** Clamp into [[min_rate, max]]. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
