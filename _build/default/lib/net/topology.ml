type node_kind = Host | Tor | Agg | Spine

type node = { id : int; kind : node_kind; label : string }

type link = {
  link_id : int;
  a : int;
  b : int;
  bandwidth : Rate.t;
  delay : Sim_time.t;
  mutable up : bool;
}

type t = {
  nodes : node Vec.t;
  links : link Vec.t;
  adjacency : (int * int) list Vec.t;  (* node -> (peer, link_id), reversed *)
}

let create () =
  { nodes = Vec.create (); links = Vec.create (); adjacency = Vec.create () }

let add_node t kind ~label =
  let id = Vec.push t.nodes { id = Vec.length t.nodes; kind; label } in
  let id' = Vec.push t.adjacency [] in
  assert (id = id');
  id

let add_link t a b ~bandwidth ~delay =
  if a = b then invalid_arg "Topology.add_link: self loop";
  let link_id =
    Vec.push t.links { link_id = Vec.length t.links; a; b; bandwidth; delay; up = true }
  in
  Vec.set t.adjacency a ((b, link_id) :: Vec.get t.adjacency a);
  Vec.set t.adjacency b ((a, link_id) :: Vec.get t.adjacency b);
  link_id

let node_count t = Vec.length t.nodes
let link_count t = Vec.length t.links
let node t i = Vec.get t.nodes i
let link t i = Vec.get t.links i
let neighbors t i = List.rev (Vec.get t.adjacency i)

let link_between t a b =
  let rec find = function
    | [] -> None
    | (peer, link_id) :: rest -> if peer = b then Some link_id else find rest
  in
  find (Vec.get t.adjacency a)

let other_end t ~link_id n =
  let l = link t link_id in
  if l.a = n then l.b
  else if l.b = n then l.a
  else invalid_arg "Topology.other_end: node not on link"

let set_link_up t ~link_id up = (link t link_id).up <- up

let filter_nodes t pred =
  let acc = ref [] in
  Vec.iter (fun n -> if pred n then acc := n.id :: !acc) t.nodes;
  Array.of_list (List.rev !acc)

let hosts t = filter_nodes t (fun n -> n.kind = Host)
let switches t = filter_nodes t (fun n -> n.kind <> Host)
let is_host t i = (node t i).kind = Host

let pp_summary ppf t =
  let count kind =
    Vec.fold_left (fun acc n -> if n.kind = kind then acc + 1 else acc) 0 t.nodes
  in
  Format.fprintf ppf "topology: %d hosts, %d tor, %d agg, %d spine, %d links"
    (count Host) (count Tor) (count Agg) (count Spine) (link_count t)
