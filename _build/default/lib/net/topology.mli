(** The physical network graph: nodes (hosts and switches) connected by
    point-to-point full-duplex links. *)

type node_kind =
  | Host
  | Tor  (** Leaf / top-of-rack switch — where Themis runs. *)
  | Agg  (** Aggregation tier (3-tier fabrics). *)
  | Spine  (** Spine (2-tier) or core (3-tier) switch. *)

type node = { id : int; kind : node_kind; label : string }

type link = {
  link_id : int;
  a : int;
  b : int;
  bandwidth : Rate.t;
  delay : Sim_time.t;
  mutable up : bool;
}

type t

val create : unit -> t

val add_node : t -> node_kind -> label:string -> int
(** Returns the new node id (dense, starting at 0). *)

val add_link :
  t -> int -> int -> bandwidth:Rate.t -> delay:Sim_time.t -> int
(** Connect two nodes; returns the link id.  Links are full duplex. *)

val node_count : t -> int
val link_count : t -> int
val node : t -> int -> node
val link : t -> int -> link

val neighbors : t -> int -> (int * int) list
(** [(peer_node, link_id)] pairs in insertion order. *)

val link_between : t -> int -> int -> int option
(** The first (usually only) link joining two nodes. *)

val other_end : t -> link_id:int -> int -> int
(** The node on the far side of a link. *)

val set_link_up : t -> link_id:int -> bool -> unit
(** Mark a link failed/recovered.  Routing must be recomputed afterwards. *)

val hosts : t -> int array
val switches : t -> int array
val is_host : t -> int -> bool

val pp_summary : Format.formatter -> t -> unit
