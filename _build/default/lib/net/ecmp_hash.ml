(* Fixed GF(2) matrix rows for the sport entropy function.  Row [i] has
   bit [i] set and only higher bits otherwise (a unitriangular matrix), so
   the map is invertible by construction — full rank is what guarantees
   the PathMap covers every residue.  The upper bits come from a splitmix
   constant so consecutive sports still avalanche. *)
let rows =
  let mask_above i = 0xFFFF land lnot ((1 lsl (i + 1)) - 1) in
  let seeds =
    [|
      0x9E37; 0x79B9; 0x7F4A; 0x7C15; 0xBF58; 0x476D; 0x1CE4; 0xE5B9;
      0x94D0; 0x49BB; 0x1331; 0x11EB; 0xD6E8; 0xFEB8; 0x6479; 0x8A5B;
    |]
  in
  Array.init 16 (fun i -> (1 lsl i) lor (seeds.(i) land mask_above i))

let linear16 x =
  let acc = ref 0 in
  for i = 0 to 15 do
    if x land (1 lsl i) <> 0 then acc := !acc lxor rows.(i)
  done;
  !acc

let mix x =
  let z =
    let open Int64 in
    let z = add (of_int x) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  Int64.to_int z land max_int

let flow_hash ~src ~dst ~sport ~dport =
  (* The non-sport fields are avalanched together; sport enters via the
     linear entropy function so that PathMap deltas compose by XOR. *)
  let base = mix ((src * 65_599) + dst + (dport * 131)) in
  (base lxor linear16 (sport land 0xFFFF)) land max_int

let path_of_hash_at ~shift ~hash ~paths =
  if paths <= 0 then invalid_arg "Ecmp_hash.path_of_hash";
  let h = hash lsr shift in
  if paths land (paths - 1) = 0 then h land (paths - 1) else h mod paths

let path_of_hash ~hash ~paths = path_of_hash_at ~shift:0 ~hash ~paths
