(** Three-tier k-ary fat-tree generator (Al-Fares et al., SIGCOMM'08).

    A k-ary fat tree has [k] pods; each pod holds [k/2] edge (ToR) and
    [k/2] aggregation switches; [(k/2)^2] core switches join the pods;
    [k^3/4] hosts total.  Between hosts in different pods there are
    [(k/2)^2] equal-cost paths; within a pod (different ToRs) there are
    [k/2].  This is the fabric of the paper's Section 4 worked example
    (k = 32: 512 ToR, 512 agg ("spine"), 256 core, 8192 hosts, 256 paths).

    [k] must be even and positive. *)

type t = {
  topo : Topology.t;
  k : int;
  hosts : int array;
  edges : int array;  (** ToRs: pod [p], position [e] at index [p*(k/2)+e]. *)
  aggs : int array;
  cores : int array;
}

val build :
  k:int -> host_bw:Rate.t -> fabric_bw:Rate.t -> link_delay:Sim_time.t -> t

val tor_of_host : t -> int -> int
val pod_of_host : t -> int -> int

val inter_pod_paths : t -> int
(** [(k/2)^2]. *)

val intra_pod_paths : t -> int
(** [k/2]. *)
