type table = { dist : int array; hops : (int * int) array array }

type t = { topo : Topology.t; mutable tables : (int, table) Hashtbl.t }

let build_table topo dst =
  let n = Topology.node_count topo in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(dst) <- 0;
  Queue.add dst queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* Hosts other than the destination do not forward traffic. *)
    if u = dst || not (Topology.is_host topo u) then
      List.iter
        (fun (peer, link_id) ->
          let l = Topology.link topo link_id in
          if l.Topology.up && dist.(peer) = max_int then begin
            dist.(peer) <- dist.(u) + 1;
            Queue.add peer queue
          end)
        (Topology.neighbors topo u)
  done;
  let hops =
    Array.init n (fun u ->
        if dist.(u) = max_int || u = dst then [||]
        else
          Topology.neighbors topo u
          |> List.filter (fun (peer, link_id) ->
                 (Topology.link topo link_id).Topology.up
                 && dist.(peer) = dist.(u) - 1)
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> Array.of_list)
  in
  { dist; hops }

let compute topo =
  let tables = Hashtbl.create 64 in
  Array.iter
    (fun h -> Hashtbl.replace tables h (build_table topo h))
    (Topology.hosts topo);
  { topo; tables }

let recompute t =
  let tables = Hashtbl.create 64 in
  Array.iter
    (fun h -> Hashtbl.replace tables h (build_table t.topo h))
    (Topology.hosts t.topo);
  t.tables <- tables

let table t dst =
  match Hashtbl.find_opt t.tables dst with
  | Some tbl -> tbl
  | None -> invalid_arg "Routing: destination is not a host"

let next_hops t ~node ~dst = (table t dst).hops.(node)
let distance t ~node ~dst = (table t dst).dist.(node)

let path_count t ~src ~dst =
  if src = dst then 1
  else
    let tbl = table t dst in
    let memo = Hashtbl.create 32 in
    let rec count u =
      if u = dst then 1
      else
        match Hashtbl.find_opt memo u with
        | Some c -> c
        | None ->
            let c =
              Array.fold_left
                (fun acc (peer, _) -> acc + count peer)
                0 tbl.hops.(u)
            in
            Hashtbl.add memo u c;
            c
    in
    count src
