lib/net/fat_tree.mli: Rate Sim_time Topology
