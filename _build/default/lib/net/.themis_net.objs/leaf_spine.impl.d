lib/net/leaf_spine.ml: Array Printf Rate Sim_time Topology
