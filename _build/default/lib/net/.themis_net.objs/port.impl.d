lib/net/port.ml: Engine Packet Queue Rate Rng Sim_time
