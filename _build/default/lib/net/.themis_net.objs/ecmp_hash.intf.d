lib/net/ecmp_hash.mli:
