lib/net/port.mli: Engine Packet Rate Rng Sim_time
