lib/net/topology.ml: Array Format List Rate Sim_time Vec
