lib/net/ecmp_hash.ml: Array Int64
