lib/net/routing.ml: Array Hashtbl List Queue Topology
