lib/net/fat_tree.ml: Array Printf Topology
