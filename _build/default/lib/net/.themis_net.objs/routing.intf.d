lib/net/routing.mli: Topology
