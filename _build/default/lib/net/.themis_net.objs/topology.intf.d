lib/net/topology.mli: Format Rate Sim_time
