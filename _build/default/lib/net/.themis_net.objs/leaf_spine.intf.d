lib/net/leaf_spine.mli: Rate Sim_time Topology
