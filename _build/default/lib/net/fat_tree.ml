type t = {
  topo : Topology.t;
  k : int;
  hosts : int array;
  edges : int array;
  aggs : int array;
  cores : int array;
}

let build ~k ~host_bw ~fabric_bw ~link_delay =
  if k <= 0 || k mod 2 <> 0 then invalid_arg "Fat_tree.build: k must be even and positive";
  let half = k / 2 in
  let topo = Topology.create () in
  let n_hosts = k * half * half in
  let hosts =
    Array.init n_hosts (fun i ->
        Topology.add_node topo Topology.Host ~label:(Printf.sprintf "h%d" i))
  in
  let edges =
    Array.init (k * half) (fun i ->
        Topology.add_node topo Topology.Tor ~label:(Printf.sprintf "edge%d" i))
  in
  let aggs =
    Array.init (k * half) (fun i ->
        Topology.add_node topo Topology.Agg ~label:(Printf.sprintf "agg%d" i))
  in
  let cores =
    Array.init (half * half) (fun i ->
        Topology.add_node topo Topology.Spine ~label:(Printf.sprintf "core%d" i))
  in
  let connect a b bw =
    ignore (Topology.add_link topo a b ~bandwidth:bw ~delay:link_delay)
  in
  (* Hosts to edges: host i sits under edge (i / half). *)
  Array.iteri (fun i host -> connect host edges.(i / half) host_bw) hosts;
  (* Edge to agg: full bipartite within each pod. *)
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        connect edges.((pod * half) + e) aggs.((pod * half) + a) fabric_bw
      done
    done
  done;
  (* Agg j of each pod connects to cores [j*half .. j*half + half - 1]. *)
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        connect aggs.((pod * half) + a) cores.((a * half) + c) fabric_bw
      done
    done
  done;
  { topo; k; hosts; edges; aggs; cores }

let tor_of_host t host =
  let half = t.k / 2 in
  t.edges.(host / half)

let pod_of_host t host =
  let half = t.k / 2 in
  host / (half * half)

let inter_pod_paths t =
  let half = t.k / 2 in
  half * half

let intra_pod_paths t = t.k / 2
