type t = { paths : int; deltas : int array }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let build ~paths =
  if (not (is_power_of_two paths)) || paths > 65536 then
    invalid_arg "Path_map.build: paths must be a power of two <= 65536";
  let deltas = Array.make paths (-1) in
  let remaining = ref paths in
  (* Scan sport deltas; [linear16 d mod paths] is the path shift that
     flipping the bits of [d] induces (XOR into the hash's low bits). *)
  let d = ref 0 in
  while !remaining > 0 && !d < 65536 do
    let shift = Ecmp_hash.linear16 !d land (paths - 1) in
    if deltas.(shift) = -1 then begin
      deltas.(shift) <- !d;
      decr remaining
    end;
    incr d
  done;
  if !remaining > 0 then failwith "Path_map.build: entropy hash does not cover all residues";
  { paths; deltas }

let paths t = t.paths
let delta_sport t ~delta_path = t.deltas.(delta_path land (t.paths - 1))
let rewrite t ~sport ~delta_path = sport lxor delta_sport t ~delta_path
let memory_bytes t = t.paths * 2

let verify t ~src ~dst ~sport =
  let path_of sp =
    Ecmp_hash.path_of_hash
      ~hash:
        (Ecmp_hash.flow_hash ~src ~dst ~sport:sp ~dport:Headers.roce_dst_port)
      ~paths:t.paths
  in
  let base = path_of sport in
  let ok = ref true in
  for delta = 0 to t.paths - 1 do
    let got = path_of (rewrite t ~sport ~delta_path:delta) in
    if got <> base lxor delta then ok := false
  done;
  !ok
