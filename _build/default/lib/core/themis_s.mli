(** Themis-Source: PSN-based spraying at the source ToR (Section 3.2).

    Two deployment modes:

    - [Direct_egress] — in a 2-tier Clos the ToR fully determines the path
      by choosing the uplink, so Themis-S simply computes Eq. 1 and the
      switch uses the result as the uplink index.

    - [Sport_rewrite] — in deeper fabrics the ToR rewrites the UDP source
      port through the offline {!Path_map} so that downstream ECMP hashing
      lands the packet on the PSN-determined path.

    Only data packets are sprayed; acknowledgements and CNPs keep the
    flow's base path so the reverse control channel stays ordered. *)

type mode = Direct_egress | Sport_rewrite of Path_map.t

type t

val create : paths:int -> mode:mode -> t
(** [paths] is [N] of Eq. 1 — the number of equal-cost paths between the
    communicating ToR pair. *)

val paths : t -> int
val mode : t -> mode

val set_paths : t -> int -> unit
(** Shrink/regrow the live path count — the Section 6 failure-tolerance
    extension: rather than abandoning spraying entirely when a path dies,
    the ToR re-sprays over the surviving subset.  Must be applied together
    with {!Themis_d.set_paths} on the destination side. *)

val base_path : t -> Packet.t -> int
(** The flow's ECMP base path index [P_base] (from the packet's connection
    identity and entropy field). *)

val egress_index : t -> Packet.t -> int option
(** [Direct_egress] mode: [Some (Eq. 1)] for data packets, [None] for
    control packets (caller falls back to ECMP).  In [Sport_rewrite] mode
    always [None]. *)

val apply : t -> Packet.t -> unit
(** [Sport_rewrite] mode: mutate the packet's UDP source port for data
    packets (no-op otherwise).  Must be applied exactly once, at the
    source ToR. *)

val sprayed_packets : t -> int
(** Data packets that have been assigned a path by this instance. *)
