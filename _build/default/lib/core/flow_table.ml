type entry = {
  queue : Psn_queue.t;
  mutable bepsn : Psn.t;
  mutable valid : bool;
}

type t = { queue_capacity : int; entries : entry Flow_id.Table.t }

let entry_bytes = 20

let create ~queue_capacity =
  if queue_capacity < 1 then invalid_arg "Flow_table.create: queue_capacity";
  { queue_capacity; entries = Flow_id.Table.create 64 }

let find_or_add t flow =
  match Flow_id.Table.find_opt t.entries flow with
  | Some e -> e
  | None ->
      let e =
        {
          queue = Psn_queue.create ~capacity:t.queue_capacity;
          bepsn = Psn.zero;
          valid = false;
        }
      in
      Flow_id.Table.add t.entries flow e;
      e

let find t flow = Flow_id.Table.find_opt t.entries flow
let remove t flow = Flow_id.Table.remove t.entries flow
let size t = Flow_id.Table.length t.entries
let iter f t = Flow_id.Table.iter f t.entries

let memory_bytes t =
  Flow_id.Table.fold
    (fun _ e acc -> acc + entry_bytes + Psn_queue.capacity e.queue)
    t.entries 0
