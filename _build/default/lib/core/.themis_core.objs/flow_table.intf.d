lib/core/flow_table.mli: Flow_id Psn Psn_queue
