lib/core/spray.mli: Flow_id Psn
