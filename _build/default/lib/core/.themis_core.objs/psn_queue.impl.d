lib/core/psn_queue.ml: Array Float List Psn Rate Sim_time Stdlib
