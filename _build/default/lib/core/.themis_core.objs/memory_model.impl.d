lib/core/memory_model.ml: Flow_table Format Psn_queue Rate Sim_time
