lib/core/path_map.ml: Array Ecmp_hash Headers
