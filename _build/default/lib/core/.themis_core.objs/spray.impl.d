lib/core/spray.ml: Ecmp_hash Flow_id Headers Psn
