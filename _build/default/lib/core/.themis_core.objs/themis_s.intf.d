lib/core/themis_s.mli: Packet Path_map
