lib/core/themis_s.ml: Packet Path_map Psn Spray
