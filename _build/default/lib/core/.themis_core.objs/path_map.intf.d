lib/core/path_map.mli:
