lib/core/themis_d.ml: Flow_id Flow_table Packet Psn Psn_queue Spray
