lib/core/psn_queue.mli: Psn Rate Sim_time
