lib/core/memory_model.mli: Format Rate Sim_time
