lib/core/flow_table.ml: Flow_id Psn Psn_queue
