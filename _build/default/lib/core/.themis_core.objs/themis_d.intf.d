lib/core/themis_d.mli: Flow_id Flow_table Packet Psn
