(** Offline PathMap construction (Section 3.2, Fig. 3).

    In fabrics deeper than two tiers the source ToR cannot pick the whole
    path by choosing an egress port; instead it re-writes the UDP source
    port so that the downstream ECMP hashes steer the packet onto the
    desired relative path.  Because production ECMP hashes are GF(2)-linear
    in the source port (Zhang et al., ATC'21), flipping a fixed set of
    sport bits shifts the selected path by a fixed delta — independent of
    the flow.  The PathMap is the offline table

    {v delta_path (0..N-1)  ->  delta_sport (16 bits) v}

    and the per-packet work is one lookup and one XOR:
    [sport' = sport lxor delta_sport((PSN mod N))].

    Because the hash is linear over GF(2), path deltas compose by XOR
    rather than by addition: rewriting with [delta_path = d] moves the
    selected path from [p] to [p lxor d].  Spraying over residues
    [PSN mod N] therefore still hits all [N] distinct paths exactly once
    per residue cycle, and the receiver-side validity test (Eq. 3 —
    equal residues imply equal paths) is unchanged.

    Construction brute-forces the 16-bit sport-delta space against
    {!Ecmp_hash.linear16}; it requires [N] to be a power of two no larger
    than [2^16] and succeeds whenever the entropy function's image covers
    the residues (guaranteed here because [linear16] is full-rank). *)

type t

val build : paths:int -> t
(** Raises [Invalid_argument] if [paths] is not a power of two in
    [[1, 65536]], or [Failure] if some residue has no sport delta (cannot
    happen with the library's full-rank hash; the check guards custom
    hashes). *)

val paths : t -> int

val delta_sport : t -> delta_path:int -> int
(** The sport bits to flip to move the ECMP choice from path [p] to
    [p lxor delta_path]. *)

val rewrite : t -> sport:int -> delta_path:int -> int
(** [sport lxor delta_sport ~delta_path]. *)

val memory_bytes : t -> int
(** 2 bytes per entry (Section 4: M_PathMap = N_paths * 2). *)

val verify : t -> src:int -> dst:int -> sport:int -> bool
(** Check, for one concrete flow, that rewriting by every delta in
    [[0, paths)] moves [Ecmp_hash.flow_hash]'s path selection from its
    base [p] to exactly [p lxor delta]. *)
