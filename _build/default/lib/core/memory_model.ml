type params = {
  n_paths : int;
  bw : Rate.t;
  rtt_last : Sim_time.t;
  n_nic : int;
  n_qp : int;
  mtu : int;
  factor : float;
}

let table1 =
  {
    n_paths = 256;
    bw = Rate.gbps 400.;
    rtt_last = Sim_time.us 2;
    n_nic = 16;
    n_qp = 100;
    mtu = 1500;
    factor = 1.5;
  }

let pathmap_bytes p = p.n_paths * 2

let n_entries p =
  Psn_queue.capacity_for ~bw:p.bw ~rtt:p.rtt_last ~mtu:p.mtu ~factor:p.factor

let per_qp_bytes p = Flow_table.entry_bytes + n_entries p

let total_bytes p = pathmap_bytes p + (per_qp_bytes p * p.n_qp * p.n_nic)

let fraction_of_sram p ~sram_bytes = float_of_int (total_bytes p) /. float_of_int sram_bytes

let tofino_sram_bytes = 64 * 1024 * 1024

let pp_report ppf p =
  let open Format in
  fprintf ppf "Table 1: Symbols and reference values@.";
  fprintf ppf "  N_paths  (equal-cost paths)      %d@." p.n_paths;
  fprintf ppf "  BW       (last-hop bandwidth)    %a@." Rate.pp p.bw;
  fprintf ppf "  RTT_last (last-hop RTT)          %a@." Sim_time.pp p.rtt_last;
  fprintf ppf "  N_NIC    (NICs per ToR)          %d@." p.n_nic;
  fprintf ppf "  N_QP     (cross-rack QPs / NIC)  %d@." p.n_qp;
  fprintf ppf "  MTU                              %dB@." p.mtu;
  fprintf ppf "  F        (expansion factor)      %.1f@." p.factor;
  fprintf ppf "Derived (Section 4):@.";
  fprintf ppf "  M_PathMap = %d B@." (pathmap_bytes p);
  fprintf ppf "  N_entries = %d@." (n_entries p);
  fprintf ppf "  M_QP      = %d B@." (per_qp_bytes p);
  fprintf ppf "  M_total   = %d B (%.1f KB)@." (total_bytes p)
    (float_of_int (total_bytes p) /. 1024.);
  fprintf ppf "  share of 64MB Tofino SRAM = %.2f%%@."
    (100. *. fraction_of_sram p ~sram_bytes:tofino_sram_bytes)
