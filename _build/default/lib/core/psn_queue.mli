(** The ring-based PSN queue of Section 3.3.

    The destination ToR caches, per QP, the PSNs of packets recently
    forwarded on the last hop (ToR -> NIC), in forwarding order.  When a
    NACK carrying only an ePSN comes back, the tPSN — the PSN of the OOO
    packet that triggered the NACK — is recovered by dequeuing entries
    until the first PSN greater than the ePSN: because the RNIC generates
    at most one NACK per ePSN, that first-greater PSN is exactly the
    trigger.

    Capacity is sized from the last hop's bandwidth-delay product with an
    expansion factor [F > 1] for RTT fluctuation (Section 4).  When the
    ring is full the oldest entry is overwritten, mirroring a hardware
    ring; overwrites are counted so experiments can check the sizing rule
    holds. *)

type t

val create : capacity:int -> t
(** [capacity >= 1]. *)

val capacity_for : bw:Rate.t -> rtt:Sim_time.t -> mtu:int -> factor:float -> int
(** [ceil (BW * RTT * F / MTU)], at least 1 — the sizing rule of §4. *)

val push : t -> Psn.t -> unit
(** Append at tail; overwrites the head slot when full. *)

val pop : t -> Psn.t option
(** Remove from head (oldest). *)

val pop_until_greater : t -> Psn.t -> Psn.t option
(** [pop_until_greater q epsn] dequeues entries (discarding them) until it
    finds the first PSN circularly greater than [epsn]; that entry is also
    consumed and returned.  [None] if the queue drains first. *)

val contains : t -> Psn.t -> bool
(** Linear scan of the live entries. *)

val length : t -> int
val capacity : t -> int
val is_empty : t -> bool
val overwrites : t -> int
(** How many entries were lost to ring overwrite since creation. *)

val clear : t -> unit
val to_list : t -> Psn.t list
(** Head (oldest) first; for tests and debugging. *)
