type t = {
  slots : int array;
  mutable head : int;  (* index of oldest entry *)
  mutable len : int;
  mutable overwrites : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Psn_queue.create: capacity must be >= 1";
  { slots = Array.make capacity 0; head = 0; len = 0; overwrites = 0 }

let capacity_for ~bw ~rtt ~mtu ~factor =
  if factor <= 0. then invalid_arg "Psn_queue.capacity_for: factor";
  if mtu <= 0 then invalid_arg "Psn_queue.capacity_for: mtu";
  let bdp_bytes = Rate.to_bps bw *. Sim_time.to_sec rtt /. 8. in
  Stdlib.max 1 (int_of_float (Float.ceil (bdp_bytes *. factor /. float_of_int mtu)))

let capacity t = Array.length t.slots
let length t = t.len
let is_empty t = t.len = 0
let overwrites t = t.overwrites

let push t psn =
  let cap = capacity t in
  if t.len = cap then begin
    (* Ring is full: the oldest entry is lost. *)
    t.slots.(t.head) <- Psn.to_int psn;
    t.head <- (t.head + 1) mod cap;
    t.overwrites <- t.overwrites + 1
  end
  else begin
    t.slots.((t.head + t.len) mod cap) <- Psn.to_int psn;
    t.len <- t.len + 1
  end

let pop t =
  if t.len = 0 then None
  else begin
    let v = t.slots.(t.head) in
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    Some (Psn.of_int v)
  end

let rec pop_until_greater t epsn =
  match pop t with
  | None -> None
  | Some psn -> if Psn.gt psn epsn then Some psn else pop_until_greater t epsn

let contains t psn =
  let target = Psn.to_int psn in
  let cap = capacity t in
  let rec scan i = i < t.len && (t.slots.((t.head + i) mod cap) = target || scan (i + 1)) in
  scan 0

let clear t =
  t.head <- 0;
  t.len <- 0

let to_list t =
  List.init t.len (fun i -> Psn.of_int t.slots.((t.head + i) mod capacity t))
