(** The analytical switch-memory model of Section 4.

    {v
    M_PathMap = N_paths * 2 bytes
    N_entries = ceil (BW * RTT_last * F / MTU)
    M_QP      = 20 bytes + N_entries * 1 byte
    M_total   = M_PathMap + M_QP * N_QP * N_NIC          (Eq. 4)
    v}

    With the Table 1 reference values (fat-tree k = 32: N_paths = 256,
    400 Gbps last hop, 2 us RTT, 16 NICs/ToR, 100 cross-rack QPs per NIC,
    1500 B MTU, F = 1.5) this yields M_total ~ 193 KB, about 0.6 % of a
    64 MB Tofino SRAM. *)

type params = {
  n_paths : int;  (** Equal-cost paths (Table 1: 256). *)
  bw : Rate.t;  (** Last-hop bandwidth (400 Gbps). *)
  rtt_last : Sim_time.t;  (** Last-hop RTT (2 us). *)
  n_nic : int;  (** NICs per ToR (16). *)
  n_qp : int;  (** Cross-rack QPs per RNIC (100). *)
  mtu : int;  (** 1500 B. *)
  factor : float;  (** Queue capacity expansion factor F (1.5). *)
}

val table1 : params
(** The reference values of Table 1. *)

val pathmap_bytes : params -> int
val n_entries : params -> int
val per_qp_bytes : params -> int
val total_bytes : params -> int

val fraction_of_sram : params -> sram_bytes:int -> float
(** [total / sram]. The paper quotes 64 MB Tofino SRAM. *)

val tofino_sram_bytes : int
(** 64 MB. *)

val pp_report : Format.formatter -> params -> unit
(** Renders Table 1 plus the derived quantities of the worked example. *)
