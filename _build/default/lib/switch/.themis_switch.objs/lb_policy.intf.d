lib/switch/lb_policy.mli: Format Packet Rng
