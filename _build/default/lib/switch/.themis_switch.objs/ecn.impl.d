lib/switch/ecn.ml: Rate Rng
