lib/switch/switch.ml: Array Buffer_pool Ecn Engine Hashtbl Headers Lb_policy List Packet Port Rng Routing Sim_time Themis_d Themis_s Topology Trace
