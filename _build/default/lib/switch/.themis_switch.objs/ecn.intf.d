lib/switch/ecn.mli: Rate Rng
