lib/switch/lb_policy.ml: Ecmp_hash Format Headers Packet Printf Rng Spray
