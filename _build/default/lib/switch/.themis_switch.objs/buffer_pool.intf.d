lib/switch/buffer_pool.mli:
