lib/switch/switch.mli: Buffer_pool Ecn Engine Lb_policy Packet Port Rate Rng Routing Sim_time Themis_d Themis_s Topology
