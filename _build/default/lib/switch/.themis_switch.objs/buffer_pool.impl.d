lib/switch/buffer_pool.ml:
