(** Shared-buffer accounting for a switch.

    Every queued byte on any egress port of the switch draws from one
    shared pool; in addition each port is capped so a single congested
    queue cannot monopolize the chip ("static threshold" sharing).  Bytes
    are reserved at enqueue and released when the packet starts
    serializing out. *)

type t

val create : capacity:int -> per_port_cap:int -> t

val try_admit : t -> port_bytes:int -> size:int -> bool
(** Reserve [size] bytes for a packet headed to a port currently holding
    [port_bytes]; [false] (nothing reserved) if either limit would be
    exceeded. *)

val release : t -> int -> unit

val used : t -> int
val capacity : t -> int
val per_port_cap : t -> int
val high_watermark : t -> int
