type t = Ecmp | Random_spray | Adaptive | Psn_spray

let all = [ Ecmp; Random_spray; Adaptive; Psn_spray ]

let to_string = function
  | Ecmp -> "ecmp"
  | Random_spray -> "random-spray"
  | Adaptive -> "adaptive"
  | Psn_spray -> "psn-spray"

let of_string = function
  | "ecmp" -> Ok Ecmp
  | "random-spray" | "spray" -> Ok Random_spray
  | "adaptive" | "ar" -> Ok Adaptive
  | "psn-spray" | "psn" -> Ok Psn_spray
  | s -> Error (Printf.sprintf "unknown load-balancing policy %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let ecmp_index_at ~shift ~(pkt : Packet.t) ~n =
  let h =
    Ecmp_hash.flow_hash ~src:pkt.Packet.src_node ~dst:pkt.Packet.dst_node
      ~sport:pkt.Packet.udp_sport ~dport:Headers.roce_dst_port
  in
  Ecmp_hash.path_of_hash_at ~shift ~hash:h ~paths:n

let ecmp_index ~pkt ~n = ecmp_index_at ~shift:0 ~pkt ~n

let least_loaded rng ~n ~load =
  let best = ref max_int and count = ref 0 in
  for i = 0 to n - 1 do
    let l = load i in
    if l < !best then begin
      best := l;
      count := 1
    end
    else if l = !best then incr count
  done;
  (* Reservoir-free uniform pick among the [!count] minima. *)
  let pick = Rng.int rng !count in
  let idx = ref 0 and seen = ref 0 and result = ref 0 in
  while !idx < n do
    if load !idx = !best then begin
      if !seen = pick then begin
        result := !idx;
        idx := n
      end
      else begin
        incr seen;
        incr idx
      end
    end
    else incr idx
  done;
  !result

let choose_at ~shift t ~rng ~(pkt : Packet.t) ~n ~load =
  if n <= 0 then invalid_arg "Lb_policy.choose: no candidates";
  if n = 1 then 0
  else
    match (t, pkt.Packet.kind) with
    | Ecmp, _
    | (Random_spray | Adaptive | Psn_spray),
      (Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _) ->
        ecmp_index_at ~shift ~pkt ~n
    | Random_spray, Packet.Data _ -> Rng.int rng n
    | Adaptive, Packet.Data _ -> least_loaded rng ~n ~load
    | Psn_spray, Packet.Data { psn; _ } ->
        let base =
          Spray.base_for_flow pkt.Packet.conn ~sport:pkt.Packet.udp_sport
            ~paths:n
        in
        Spray.path_for_psn ~psn ~base ~paths:n

let choose t ~rng ~pkt ~n ~load = choose_at ~shift:0 t ~rng ~pkt ~n ~load
