type config = { kmin : int; kmax : int; pmax : float }

let config ~kmin ~kmax ~pmax =
  if kmin < 0 || kmax < kmin then invalid_arg "Ecn.config: need 0 <= kmin <= kmax";
  if pmax < 0. || pmax > 1. then invalid_arg "Ecn.config: pmax must be in [0,1]";
  { kmin; kmax; pmax }

let scaled_to bw =
  let scale = Rate.to_gbps bw /. 100. in
  config
    ~kmin:(int_of_float (100_000. *. scale))
    ~kmax:(int_of_float (400_000. *. scale))
    ~pmax:0.2

let should_mark cfg rng ~queue_bytes =
  if queue_bytes <= cfg.kmin then false
  else if queue_bytes >= cfg.kmax then true
  else
    let span = float_of_int (cfg.kmax - cfg.kmin) in
    let p = cfg.pmax *. (float_of_int (queue_bytes - cfg.kmin) /. span) in
    Rng.float rng < p
