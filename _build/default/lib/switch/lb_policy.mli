(** Per-packet load-balancing policies for choosing among equal-cost
    next hops.

    Control packets (ACK / NACK / CNP / pause) always follow the flow's
    ECMP path regardless of policy, keeping the reverse control channel
    in order; only data packets are sprayed. *)

type t =
  | Ecmp  (** Flow-level hashing — the deployed default the paper indicts. *)
  | Random_spray  (** Uniform per-packet choice (Dixit et al.). *)
  | Adaptive
      (** Per-packet least-loaded egress ("adaptive routing" baseline of
          Section 5), ties broken uniformly. *)
  | Psn_spray
      (** Eq. 1 — the deterministic spraying Themis-S enforces.  Usable
          standalone (for ablation) or through [Themis_s]. *)

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit

val ecmp_index : pkt:Packet.t -> n:int -> int
(** The flow's ECMP choice among [n] candidates (hash of the packet's
    addressing + entropy field). *)

val choose : t -> rng:Rng.t -> pkt:Packet.t -> n:int -> load:(int -> int) -> int
(** Pick a candidate index in [[0, n)].  [load i] is the queued byte count
    of candidate [i] (used by [Adaptive]). *)

val choose_at :
  shift:int -> t -> rng:Rng.t -> pkt:Packet.t -> n:int -> load:(int -> int) -> int
(** Like {!choose} but hashing with the tier's ECMP bit window (see
    {!Ecmp_hash.path_of_hash_at}) — used by multi-tier fabrics where each
    tier consumes a different slice of the header hash. *)
