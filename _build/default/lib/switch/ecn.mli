(** WRED-style ECN marking at egress queues (the DCQCN signal source).

    A data packet is marked CE with probability 0 below [kmin] queued
    bytes, [pmax] at [kmax], linear in between, and 1 above [kmax]. *)

type config = { kmin : int; kmax : int; pmax : float }

val config : kmin:int -> kmax:int -> pmax:float -> config
(** Validates [0 <= kmin <= kmax], [0 <= pmax <= 1]. *)

val scaled_to : Rate.t -> config
(** The conventional DCQCN operating point scaled linearly with link
    bandwidth: 100 KB / 400 KB / 0.2 at 100 Gbps. *)

val should_mark : config -> Rng.t -> queue_bytes:int -> bool
