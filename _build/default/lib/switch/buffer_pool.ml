type t = {
  capacity : int;
  per_port_cap : int;
  mutable used : int;
  mutable high : int;
}

let create ~capacity ~per_port_cap =
  if capacity <= 0 || per_port_cap <= 0 then
    invalid_arg "Buffer_pool.create: capacities must be positive";
  { capacity; per_port_cap; used = 0; high = 0 }

let try_admit t ~port_bytes ~size =
  if t.used + size > t.capacity || port_bytes + size > t.per_port_cap then false
  else begin
    t.used <- t.used + size;
    if t.used > t.high then t.high <- t.used;
    true
  end

let release t size =
  t.used <- t.used - size;
  if t.used < 0 then t.used <- 0

let used t = t.used
let capacity t = t.capacity
let per_port_cap t = t.per_port_cap
let high_watermark t = t.high
