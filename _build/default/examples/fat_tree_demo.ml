(* Themis on a 3-tier fat tree: the sport-rewrite deployment.

   In fabrics deeper than two tiers the source ToR cannot choose the
   whole path by picking an uplink.  Themis-S instead rewrites the UDP
   source port through an offline PathMap built from ECMP hashing
   linearity (Section 3.2, Fig. 3): flipping a fixed set of sport bits
   moves the downstream hash decisions by a fixed amount, so one rewrite
   per packet steers both the edge->agg and agg->core hops.  This demo
   runs cross-pod traffic on a k=4 fat tree and shows (a) every one of
   the (k/2)^2 = 4 equal-cost paths carrying traffic and (b) the NACK
   filtering working unchanged three tiers up. *)

let () =
  let run ~themis =
    let net = Fat_tree_net.build (Fat_tree_net.default_params ~k:4 ~themis ()) in
    let ft = Fat_tree_net.fat_tree net in
    let hosts = ft.Fat_tree.hosts in
    let n = Array.length hosts in
    let completed = ref 0 and last = ref Sim_time.zero in
    Array.iteri
      (fun i src ->
        let dst = hosts.((i + (n / 2)) mod n) in
        let qp = Fat_tree_net.connect net ~src ~dst in
        Rnic.post_send qp ~bytes:2_000_000 ~on_complete:(fun t ->
            incr completed;
            last := Sim_time.max !last t))
      hosts;
    Fat_tree_net.run net ~until:(Sim_time.sec 10);
    (net, ft, !completed, !last)
  in

  Format.printf "k=4 fat tree: 16 hosts, 8 edge + 8 agg + 4 core switches,@.";
  Format.printf "4 equal-cost paths between pods; every host sends 2 MB cross-pod.@.";

  let net, ft, completed, last = run ~themis:true in
  Format.printf "@.== PSN spraying via sport rewriting (Themis) ==@.";
  Format.printf "  flows completed       %d/16, tail %a@." completed Sim_time.pp last;
  Format.printf "  packets sport-rewritten %d@." (Fat_tree_net.sprayed_packets net);
  Format.printf "  core switch load      ";
  Array.iter
    (fun c ->
      Format.printf "%d " (Switch.rx_packets (Fat_tree_net.switch net ~node:c)))
    ft.Fat_tree.cores;
  Format.printf "(packets per core — spraying covers all of them)@.";
  (match Fat_tree_net.themis_totals net with
  | Some t ->
      Format.printf "  NACKs: %d seen, %d blocked, %d reached senders@."
        t.Network.nacks_seen t.Network.nacks_blocked
        (Fat_tree_net.total_nacks_delivered net)
  | None -> ());
  Format.printf "  spurious retransmissions %d@." (Fat_tree_net.total_retx_packets net);

  let net, ft, completed, last = run ~themis:false in
  Format.printf "@.== Plain ECMP (no Themis) ==@.";
  Format.printf "  flows completed       %d/16, tail %a@." completed Sim_time.pp last;
  Format.printf "  core switch load      ";
  Array.iter
    (fun c ->
      Format.printf "%d " (Switch.rx_packets (Fat_tree_net.switch net ~node:c)))
    ft.Fat_tree.cores;
  Format.printf "(hash collisions leave cores unevenly loaded)@."
