(* Collective communication under the three load-balancing schemes of the
   paper's evaluation (Section 5).

   One 4x4 leaf-spine fabric at 400 Gbps runs the same ring Allreduce in
   four communication groups; the demo prints the slowest group's
   completion time — the metric that bounds a training job's step time —
   for ECMP, per-packet adaptive routing, and Themis. *)

let fabric =
  {
    Leaf_spine.n_leaves = 4;
    n_spines = 4;
    hosts_per_leaf = 4;
    host_bw = Rate.gbps 400.;
    fabric_bw = Rate.gbps 400.;
    link_delay = Sim_time.us 1;
  }

let bytes_per_group = 2_000_000

let run scheme =
  let params = Network.default_params ~fabric ~scheme in
  let net = Network.build params in
  let groups = Workload.cross_rack_groups (Network.fabric net) in
  let completions = Array.make (Array.length groups) None in
  Array.iteri
    (fun g members ->
      let schedule =
        Schedule.ring_allreduce ~ranks:(Array.length members)
          ~bytes:bytes_per_group
      in
      ignore
        (Workload.launch_group ~net ~members ~schedule ~group:g
           ~on_complete:(fun ~group time -> completions.(group) <- Some time)))
    groups;
  Network.run net ~until:(Sim_time.sec 10);
  let tail =
    Array.fold_left
      (fun acc c ->
        match c with
        | Some t -> Stdlib.max acc t
        | None -> failwith "a group did not complete")
      0 completions
  in
  (tail, net)

let () =
  Format.printf
    "Ring Allreduce (%d groups of %d ranks, %.1f MB each) on a 4x4 400G fabric@."
    fabric.Leaf_spine.hosts_per_leaf fabric.Leaf_spine.n_leaves
    (float_of_int bytes_per_group /. 1e6);
  Format.printf "%-22s %14s %12s %14s@." "scheme" "tail CT" "spurious rtx"
    "NACKs->sender";
  List.iter
    (fun scheme ->
      let tail, net = run scheme in
      Format.printf "%-22s %14s %12d %14d@."
        (Network.scheme_to_string scheme)
        (Format.asprintf "%a" Sim_time.pp tail)
        (Network.total_retx_packets net)
        (Network.total_nacks_delivered net))
    [
      Network.Ecmp;
      Network.Adaptive;
      Network.Random_spray;
      Network.Themis { compensation = true };
    ];
  Format.printf
    "@.Themis sprays packets like adaptive routing but blocks the invalid@.\
     NACKs that out-of-order arrivals provoke, so the senders never@.\
     retransmit spuriously or slow-start. Lower tail completion time wins.@."
