examples/fat_tree_demo.ml: Array Fat_tree Fat_tree_net Format Network Rnic Sim_time Switch
