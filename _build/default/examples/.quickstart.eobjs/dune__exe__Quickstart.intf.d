examples/quickstart.mli:
