examples/failure_fallback.ml: Array Engine Flow_id Format Leaf_spine Network Option Rnic Sim_time Topology Workload
