examples/quickstart.ml: Format Leaf_spine Network Rnic Sim_time
