examples/failure_fallback.mli:
