examples/fat_tree_demo.mli:
