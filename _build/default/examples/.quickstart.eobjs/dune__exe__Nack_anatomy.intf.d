examples/nack_anatomy.mli:
