examples/collective_demo.ml: Array Format Leaf_spine List Network Rate Schedule Sim_time Stdlib Workload
