examples/nack_anatomy.ml: Flow_id Flow_table Format List Packet Psn Psn_queue String Themis_d
