examples/collective_demo.mli:
