(* Link-failure tolerance (Section 6).

   PSN-based spraying assumes all N equal-cost paths are alive; when a
   ToR-spine link dies mid-transfer, the deployment described in the
   paper detects it and reverts the fabric to ECMP, disabling Themis.
   This example fails a link 50 us into an 8-flow run and shows that
   every flow still completes, with the middleware detached and the
   ToRs back on flow-level hashing. *)

let () =
  let params =
    Network.default_params ~fabric:Leaf_spine.motivation
      ~scheme:(Network.Themis { compensation = true })
  in
  let net = Network.build params in
  let ls = Network.fabric net in
  Format.printf "8 hosts, 2x4 leaf-spine at 100 Gbps, two interleaved rings.@.";
  Format.printf "Themis active: %b@." (Network.themis_active net);

  let done_count = ref 0 in
  let groups = Workload.motivation_groups ls in
  Array.iter
    (fun members ->
      let n = Array.length members in
      Array.iteri
        (fun i src ->
          let qp = Network.connect net ~src ~dst:members.((i + 1) mod n) in
          Rnic.post_send qp ~bytes:3_000_000 ~on_complete:(fun t ->
              incr done_count;
              Format.printf "  flow %a finished at %a@." Flow_id.pp
                (Rnic.qp_conn qp) Sim_time.pp t))
        members)
    groups;

  (* Monitoring (Pingmesh-style in the paper) reports the failure 50 us
     in; the controller fails the link and triggers the fallback. *)
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let spine0 = ls.Leaf_spine.spines.(0) in
  let link = Option.get (Topology.link_between ls.Leaf_spine.topo tor0 spine0) in
  ignore
    (Engine.schedule (Network.engine net) ~delay:(Sim_time.us 50) (fun () ->
         Format.printf "@.!! link tor0<->spine0 failed at %a: reverting to ECMP@.@."
           Sim_time.pp (Network.now net);
         Network.fail_link net ~link_id:link));

  Network.run net ~until:(Sim_time.sec 10);

  Format.printf "@.Themis active after failure: %b@." (Network.themis_active net);
  Format.printf "Flows completed: %d / 8@." !done_count;
  Format.printf "Packets lost to the dying link: counted and retransmitted (%d retx).@."
    (Network.total_retx_packets net);
  if !done_count <> 8 then exit 1
